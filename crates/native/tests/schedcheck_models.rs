//! Model tests for the native backend's lock-free core, driven by the
//! `schedcheck` bounded model checker. Compiled (and meaningful) only
//! under `RUSTFLAGS='--cfg schedcheck'`, where the `native::sync` facade
//! routes every atomic, lock, park and raw-node hand-off through the
//! checker's shadow types:
//!
//! ```sh
//! RUSTFLAGS='--cfg schedcheck' CARGO_TARGET_DIR=target/schedcheck \
//!     cargo test -p native --test schedcheck_models
//! ```
//!
//! Each clean model asserts ≥ 1,000 distinct schedules explored at a
//! preemption bound ≥ 2 with zero SC201–SC203 violations; the seeded
//! regressions assert the checker catches real historical bugs in a
//! handful of schedules. A failure prints a replayable schedule trace
//! (`Checker::replay`).
#![cfg(schedcheck)]

use std::sync::Arc;

use mpistream::{Src, Tag, Transport};
use native::mailbox::{Env, Mailbox};
use native::sync::Instant;
use native::NativeWorld;
use schedcheck::{codes, Checker, Outcome};

fn env(src: usize, tag: Tag, v: u32) -> Env {
    Env { src, tag, bytes: 8, payload: Box::new(v) }
}

fn val(e: Env) -> u32 {
    *e.payload.downcast::<u32>().unwrap()
}

/// Preemption bound ≥ `min_preemptions` (≥ 2 everywhere; the env var
/// `SCHEDCHECK_PREEMPTIONS` may raise it further), schedule cap low
/// enough to keep CI time bounded. Models whose state space is too
/// small to clear the 1,000-schedule acceptance floor at bound 2 ask
/// for a deeper bound instead of padding themselves with noise ops.
fn checker_with(max_schedules: u64, min_preemptions: usize) -> Checker {
    let p = std::env::var("SCHEDCHECK_PREEMPTIONS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map_or(min_preemptions, |p| p.max(min_preemptions));
    Checker::new().max_schedules(max_schedules).preemptions(p.max(2))
}

fn checker(max_schedules: u64) -> Checker {
    checker_with(max_schedules, 2)
}

fn assert_clean_and_explored(out: &Outcome) {
    if let Some(v) = &out.violation {
        panic!("model must be clean, got: {v}");
    }
    assert!(
        out.schedules >= 1_000,
        "acceptance floor: ≥ 1,000 distinct schedules (got {})",
        out.schedules
    );
}

// ---------------------------------------------------------------------
// 1. MPSC staging: concurrent pushes, reverse drain, per-source FIFO
// ---------------------------------------------------------------------

/// Two producers race their Treiber-stack pushes while the consumer
/// blocks in `take`. Under every schedule: all four envelopes arrive,
/// per-source order is FIFO (the CAS linearization order survives the
/// LIFO drain's reversal), and every staged node is reclaimed (the
/// checker's end-of-execution leak audit covers SC203 implicitly).
#[test]
fn mpsc_push_and_reverse_drain_is_clean() {
    let out = checker(4_000).model(|| {
        let mb = Arc::new(Mailbox::new());
        let t = Tag::user(1);
        let producers: Vec<_> = (0..2)
            .map(|src| {
                let mb = Arc::clone(&mb);
                schedcheck::thread::spawn(move || {
                    mb.push(env(src, t, (src * 10) as u32));
                    mb.push(env(src, t, (src * 10 + 1) as u32));
                })
            })
            .collect();
        let mut per_src = [Vec::new(), Vec::new()];
        for _ in 0..4 {
            let e = mb.take(Src::Any, t);
            per_src[e.src].push(val(e));
        }
        assert_eq!(per_src[0], [0, 1], "src 0 must stay FIFO");
        assert_eq!(per_src[1], [10, 11], "src 1 must stay FIFO");
        for p in producers {
            p.join().unwrap();
        }
    });
    assert_clean_and_explored(&out);
}

// ---------------------------------------------------------------------
// 2. Eventcount park vs concurrent push
// ---------------------------------------------------------------------

/// The park protocol's whole point: a push may land at *any* point
/// around the consumer's publish-parked / re-check / wait sequence, and
/// the consumer must never sleep through it. The checker proves there is
/// no schedule where `take` parks past the only push (that would be an
/// SC202 deadlock: the producer is finished, nobody will ever notify).
#[test]
fn eventcount_park_vs_concurrent_push_is_clean() {
    let out = checker(4_000).model(|| {
        let mb = Arc::new(Mailbox::new());
        let (ta, tb) = (Tag::user(1), Tag::user(2));
        let p1 = {
            let mb = Arc::clone(&mb);
            schedcheck::thread::spawn(move || mb.push(env(0, ta, 7)))
        };
        let p2 = {
            let mb = Arc::clone(&mb);
            schedcheck::thread::spawn(move || mb.push(env(1, tb, 9)))
        };
        // Directed blocking takes in a fixed order: each may have to
        // park while the other producer's envelope sits staged.
        assert_eq!(val(mb.take(Src::Any, ta)), 7);
        assert_eq!(val(mb.take(Src::Any, tb)), 9);
        p1.join().unwrap();
        p2.join().unwrap();
    });
    assert_clean_and_explored(&out);
}

// ---------------------------------------------------------------------
// 3. take_deadline under timeouts and spurious wakes
// ---------------------------------------------------------------------

/// `wait_timeout` is modeled as an always-enabled timeout transition, so
/// the checker exercises every placement of a (possibly spurious) wake:
/// the deadline take must either return the racing push or time out —
/// never deadlock, never return the wrong envelope — and on an empty
/// mailbox it must *always* time out.
#[test]
fn take_deadline_under_spurious_wakes_is_clean() {
    let out = checker_with(6_000, 3).model(|| {
        let mb = Arc::new(Mailbox::new());
        let t = Tag::user(3);
        let p = {
            let mb = Arc::clone(&mb);
            schedcheck::thread::spawn(move || mb.push(env(0, t, 5)))
        };
        let deadline = Instant::now() + std::time::Duration::from_millis(10);
        match mb.take_deadline(Src::Rank(0), t, deadline) {
            Some(e) => assert_eq!(val(e), 5),
            // Timed out before the push landed; the staged node is
            // reclaimed by Mailbox::drop (the leak audit checks).
            None => assert!(Instant::now() >= deadline),
        }
        // An empty tag must always time out, under every schedule.
        let deadline = Instant::now() + std::time::Duration::from_millis(5);
        assert!(mb.take_deadline(Src::Any, Tag::user(9), deadline).is_none());
        p.join().unwrap();
    });
    assert_clean_and_explored(&out);
}

// ---------------------------------------------------------------------
// 4. Batched credit return
// ---------------------------------------------------------------------

/// The stream runtime's credit protocol in miniature: a producer sends
/// `window` data envelopes then blocks for a batched credit; the
/// consumer takes the batch and returns one credit carrying the whole
/// count. Two mailboxes, traffic in both directions, parks on both
/// sides — the shape that found PR 6's eventcount bugs.
#[test]
fn batched_credit_return_is_clean() {
    let out = checker_with(6_000, 3).model(|| {
        let data_mb = Arc::new(Mailbox::new());
        let credit_mb = Arc::new(Mailbox::new());
        let (data, credit) = (Tag::user(1), Tag::user(2));
        let consumer = {
            let (data_mb, credit_mb) = (Arc::clone(&data_mb), Arc::clone(&credit_mb));
            schedcheck::thread::spawn(move || {
                let mut batch = 0u32;
                for i in 0..2 {
                    let e = data_mb.take(Src::Rank(0), data);
                    assert_eq!(val(e), i, "data must stay FIFO");
                    batch += 1;
                }
                credit_mb.push(env(1, credit, batch));
            })
        };
        data_mb.push(env(0, data, 0));
        data_mb.push(env(0, data, 1));
        let got = credit_mb.take(Src::Rank(1), credit);
        assert_eq!(val(got), 2, "one credit envelope returns the whole batch");
        consumer.join().unwrap();
    });
    assert_clean_and_explored(&out);
}

// ---------------------------------------------------------------------
// 5. Replication: commit-before-credit-return
// ---------------------------------------------------------------------

/// `crates/replica`'s integration invariant in miniature: a credit is a
/// durability acknowledgement, so the producer may drop its replay
/// buffer on receiving one — the elements then exist *only* in the
/// replica snapshot. Modeled as a [`cell::RaceCell`]: the standby's
/// snapshot install is the write, the producer's post-credit read of
/// the surviving state is the read, and the only thing ordering them is
/// the protocol itself (Prepare → PrepareOk → credit, each a mailbox
/// hand-off). With the primary crediting strictly after the quorum ack,
/// every schedule is clean.
#[test]
fn commit_before_credit_return_is_clean() {
    let out = checker_with(6_000, 3).model(|| {
        let data_mb = Arc::new(Mailbox::new());
        let prepare_mb = Arc::new(Mailbox::new());
        let ok_mb = Arc::new(Mailbox::new());
        let credit_mb = Arc::new(Mailbox::new());
        let (data, prep, ok, credit) = (Tag::user(1), Tag::user(2), Tag::user(3), Tag::user(4));
        let durable = Arc::new(schedcheck::cell::RaceCell::new(0u32));

        let standby = {
            let (prepare_mb, ok_mb, durable) =
                (Arc::clone(&prepare_mb), Arc::clone(&ok_mb), Arc::clone(&durable));
            schedcheck::thread::spawn(move || {
                let batch = val(prepare_mb.take(Src::Rank(1), prep));
                durable.set(batch); // install the replicated snapshot
                ok_mb.push(env(2, ok, batch));
            })
        };
        let primary = {
            let (data_mb, prepare_mb, ok_mb, credit_mb) = (
                Arc::clone(&data_mb),
                Arc::clone(&prepare_mb),
                Arc::clone(&ok_mb),
                Arc::clone(&credit_mb),
            );
            schedcheck::thread::spawn(move || {
                let batch = val(data_mb.take(Src::Rank(0), data));
                prepare_mb.push(env(1, prep, batch));
                // Commit-before-credit-return: the quorum ack *must*
                // come back before the credit goes out.
                assert_eq!(val(ok_mb.take(Src::Rank(2), ok)), batch);
                credit_mb.push(env(1, credit, batch));
            })
        };
        // The producer: send a batch, wait for its credit, drop the
        // replay buffer — the data now lives only in the snapshot.
        data_mb.push(env(0, data, 2));
        assert_eq!(val(credit_mb.take(Src::Rank(1), credit)), 2);
        assert_eq!(durable.get(), 2, "the credited elements must already be durable");
        standby.join().unwrap();
        primary.join().unwrap();
    });
    assert_clean_and_explored(&out);
}

/// The invariant violated on purpose: the primary returns the credit
/// *before* waiting for the quorum ack (the exact reordering
/// `crates/replica`'s consumer loop forbids). Now nothing orders the
/// standby's snapshot install against the producer's post-credit read,
/// and the checker must find the SC201 race — the schedule where a
/// producer discards its replay buffer while the checkpoint that
/// covers it hasn't reached the standby.
#[test]
fn credit_before_quorum_ack_is_caught_as_a_race() {
    let model = || {
        let prepare_mb = Arc::new(Mailbox::new());
        let ok_mb = Arc::new(Mailbox::new());
        let credit_mb = Arc::new(Mailbox::new());
        let (prep, ok, credit) = (Tag::user(2), Tag::user(3), Tag::user(4));
        let durable = Arc::new(schedcheck::cell::RaceCell::new(0u32));

        let standby = {
            let (prepare_mb, ok_mb, durable) =
                (Arc::clone(&prepare_mb), Arc::clone(&ok_mb), Arc::clone(&durable));
            schedcheck::thread::spawn(move || {
                let batch = val(prepare_mb.take(Src::Rank(1), prep));
                durable.set(batch);
                ok_mb.push(env(2, ok, batch));
            })
        };
        let primary = {
            let (prepare_mb, ok_mb, credit_mb) =
                (Arc::clone(&prepare_mb), Arc::clone(&ok_mb), Arc::clone(&credit_mb));
            schedcheck::thread::spawn(move || {
                prepare_mb.push(env(1, prep, 2));
                // BUG: the credit outruns the quorum ack.
                credit_mb.push(env(1, credit, 2));
                let _ = ok_mb.take(Src::Rank(2), ok);
            })
        };
        assert_eq!(val(credit_mb.take(Src::Rank(1), credit)), 2);
        let _ = durable.get(); // races with the standby's install
        standby.join().unwrap();
        primary.join().unwrap();
    };
    let out = checker(6_000).model(model);
    let v = out.violation.expect("the early credit must surface as a data race");
    assert_eq!(v.code, codes::SC201, "wrong code: {v}");
    assert!(v.message.contains("RaceCell"), "should name the racing cell: {v}");
    let replayed = checker(6_000)
        .replay(&v.trace, model)
        .expect("the reported trace must replay to a violation");
    assert_eq!(replayed.code, v.code);
}

// ---------------------------------------------------------------------
// 6. Small binomial-tree collective, end to end
// ---------------------------------------------------------------------

/// A whole `NativeWorld` under the model: three ranks allreduce over the
/// binomial tree (flat threshold forced to 0), exercising scoped rank
/// threads, collective tagging, directed receives and the park protocol
/// together. The state space is huge; the bounded search explores a
/// capped sample and must find nothing.
#[test]
fn small_tree_collective_is_clean() {
    let out = checker(2_000).model(|| {
        NativeWorld::new(3).with_coll_flat_threshold(0).run(|rank| {
            let world = rank.world_group();
            let sum = rank.allreduce(&world, 8, rank.world_rank() as u64 + 1, |a, b| *a += b);
            assert_eq!(sum, 6);
        });
    });
    assert_clean_and_explored(&out);
}

// ---------------------------------------------------------------------
// Seeded regressions: the checker must catch real historical bugs
// ---------------------------------------------------------------------

/// PR 6's `mail_seen` bug, reintroduced verbatim: a polling round that
/// re-snapshots the version *after* its polls absorbs a push that landed
/// mid-round, and the next `wait_change` parks forever — the producer is
/// long done, so no notify is coming. The checker must flag the lost
/// wakeup (SC202) within a handful of schedules, and the reported trace
/// must replay to the same violation.
#[test]
fn mail_seen_poll_absorption_bug_is_caught() {
    let model = || {
        let mb = Arc::new(Mailbox::new());
        let (ta, tb) = (Tag::user(1), Tag::user(2));
        let p = {
            let mb = Arc::clone(&mb);
            schedcheck::thread::spawn(move || mb.push(env(0, tb, 7)))
        };
        // Round-start snapshot, then poll stream A.
        let _seen = mb.version();
        assert!(mb.try_take(Src::Any, ta).is_none());
        // BUG (PR 6): advancing the snapshot on a poll. A push landing
        // before this line is absorbed into `seen` without stream A's
        // poll ever having seen it.
        let seen = mb.version();
        assert!(mb.try_take(Src::Any, ta).is_none()); // poll A again
        mb.wait_change(seen); // parks forever in the buggy interleaving
        let _ = mb.take(Src::Any, tb);
        p.join().unwrap();
    };
    let out = checker(4_000).model(model);
    let v = out.violation.expect("the absorbed push must be caught as a lost wakeup");
    assert_eq!(v.code, codes::SC202, "wrong code: {v}");
    assert!(v.message.contains("lost wakeup"), "should flag the park: {v}");
    assert!(
        out.schedules <= 1_000,
        "a 2-preemption bug should surface in a handful of schedules, took {}",
        out.schedules
    );
    let replayed = checker(4_000)
        .replay(&v.trace, model)
        .expect("the reported trace must replay to a violation");
    assert_eq!(replayed.code, v.code);
}

/// The PR 6 `Mailbox::drop` fix, proven rather than spot-checked: nodes
/// still staged at teardown (pushed, never taken) are reclaimed in every
/// schedule — no SC203 leak. Deleting the `Drop` impl makes this fail.
#[test]
fn mailbox_drop_reclaims_staged_nodes_in_every_schedule() {
    let out = checker(4_000).model(|| {
        let mb = Arc::new(Mailbox::new());
        let t = Tag::user(1);
        let p = {
            let mb = Arc::clone(&mb);
            schedcheck::thread::spawn(move || {
                mb.push(env(0, t, 1));
                mb.push(env(0, t, 2));
            })
        };
        // Consume at most one; the rest must die staged or indexed.
        let _ = mb.try_take(Src::Any, t);
        p.join().unwrap();
    });
    if let Some(v) = &out.violation {
        panic!("teardown must reclaim staged nodes, got: {v}");
    }
}

//! # perfmodel — the decoupling performance model (§II-D, Eqs. 1–4)
//!
//! The paper analyses decoupling with a two-operation model. An
//! application runs `Op0` (kept on the compute group) and `Op1` (decoupled
//! to a fraction `α` of the processes), with:
//!
//! - `T_W0`, `T_W1` — per-process time of each operation in the
//!   conventional run on `P` processes,
//! - `Tσ` — expected idle time from process imbalance at staged
//!   synchronization points,
//! - `β(S)` — the *non-overlapped* fraction of `Op0` as a function of the
//!   stream granularity `S` (β=0: perfect pipeline, β=1: no pipeline),
//! - `o` — per-stream-element overhead, `D` — total transferred data.
//!
//! **Eq. 1** (conventional): `Tc = T_W0 + Tσ + T_W1`
//!
//! **Eq. 2** (parallel groups): `Td = max(T_W0/(1−α) + Tσ, T'_W1)`
//!
//! **Eq. 3** (pessimistic pipeline): `Td = β·(T_W0/(1−α) + Tσ) + T'_W1`
//!
//! **Eq. 4** (with overhead): `Td = β(S)·(T_W0/(1−α) + Tσ + D/S·o) + T'_W1`
//!
//! `T'_W1` is the decoupled operation's per-process time on the `α·P`
//! group. For perfectly divisible work it is the paper's `T_W1/α` (fewer
//! processes, more work each); for complexity-bound operations —
//! collectives, all-to-all metadata — it *shrinks* when the group shrinks,
//! which is exactly the paper's criterion for profitable decoupling
//! (`T'_W1 ≪ T_W1 when P1 ≪ P`). The [`Complexity`] family captures how
//! the per-process time rescales between group sizes.

/// How the decoupled operation's *per-process time* rescales when the
/// executing group changes from `p_from` to `p_to` processes (total
/// workload held fixed).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Complexity {
    /// Perfectly divisible work: per-process time ∝ 1/p. Moving to a
    /// smaller group makes each member proportionally slower — the `1/α`
    /// factor of Eq. 2.
    Divisible,
    /// Latency-/tree-bound collectives: per-process time ∝ log₂(2p).
    /// Shrinking the group genuinely reduces the operation's cost.
    LogP,
    /// Per-process time ∝ p (e.g. the naive everyone-informs-everyone
    /// particle exchange, O(P²) total).
    LinearP,
    /// Per-process time ∝ p^γ (γ = −1 ≡ `Divisible`, γ = 1 ≡ `LinearP`).
    PowerP { gamma: f64 },
}

impl Complexity {
    /// Multiplier on the per-process time when moving the operation from
    /// a `p_from`-process group to a `p_to`-process group.
    pub fn rescale(&self, p_from: usize, p_to: usize) -> f64 {
        let from = p_from.max(1) as f64;
        let to = p_to.max(1) as f64;
        match *self {
            Complexity::Divisible => from / to,
            Complexity::LogP => (2.0 * to).log2() / (2.0 * from).log2(),
            Complexity::LinearP => to / from,
            Complexity::PowerP { gamma } => (to / from).powf(gamma),
        }
    }
}

/// Families of β(S) curves. The paper only states that finer granularity
/// improves pipelining; we use the standard saturating form
/// `β(S) = β∞ + (1 − β∞) · S / (S + S₀)` — β → β∞ as S → 0 (finest
/// granularity pipelines best) and β → 1 as S → ∞ (one giant element
/// cannot overlap anything).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Beta {
    /// Best achievable non-overlap (0 = perfect pipelining possible).
    pub beta_min: f64,
    /// Granularity scale at which pipelining starts degrading (bytes).
    pub s0: f64,
}

impl Beta {
    pub fn new(beta_min: f64, s0: f64) -> Beta {
        assert!((0.0..=1.0).contains(&beta_min));
        assert!(s0 > 0.0);
        Beta { beta_min, s0 }
    }

    /// β at granularity `s` bytes.
    pub fn at(&self, s: f64) -> f64 {
        assert!(s > 0.0, "granularity must be positive");
        self.beta_min + (1.0 - self.beta_min) * s / (s + self.s0)
    }
}

/// The model's description of one decoupling scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Per-process time of the kept operation, conventional run (s).
    pub t_w0: f64,
    /// Per-process time of the decoupled operation, conventional run (s).
    pub t_w1: f64,
    /// How `Op1`'s per-process time rescales with group size.
    pub complexity: Complexity,
    /// Expected imbalance penalty (s).
    pub t_sigma: f64,
    /// Total data streamed between groups (bytes).
    pub data_d: u64,
    /// Per-stream-element overhead (s).
    pub overhead_o: f64,
    /// Total number of processes.
    pub p: usize,
    /// Pipelining curve β(S).
    pub beta: Beta,
    /// Application-specific speedup of the decoupled operation on its
    /// dedicated group (§II-E: "aggressively optimized ... with
    /// application-specific knowledge"), e.g. buffering for I/O or batch
    /// processing for reductions. 1.0 = no optimization.
    pub op1_optimization: f64,
}

impl Scenario {
    /// Eq. 1: conventional staged execution.
    pub fn conventional(&self) -> f64 {
        self.t_w0 + self.t_sigma + self.t_w1
    }

    /// `T'_W1`: per-process time of `Op1` on the `α·P` group.
    pub fn t_w1_decoupled(&self, alpha: f64) -> f64 {
        let group = ((alpha * self.p as f64).round() as usize).max(1);
        self.t_w1 * self.complexity.rescale(self.p, group) / self.op1_optimization.max(1e-12)
    }

    /// The compute-group term of Eqs. 2–4: `T_W0/(1−α) + Tσ`.
    pub fn t_w0_inflated(&self, alpha: f64) -> f64 {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0,1), got {alpha}");
        self.t_w0 / (1.0 - alpha) + self.t_sigma
    }

    /// Eq. 2: perfectly parallel groups (upper bound on benefit).
    pub fn decoupled_ideal(&self, alpha: f64) -> f64 {
        self.t_w0_inflated(alpha).max(self.t_w1_decoupled(alpha))
    }

    /// Eq. 3: pessimistic serial composition with the pipeline fraction
    /// from the β curve at granularity `s` (no overhead term).
    pub fn decoupled_pipelined(&self, alpha: f64, s: f64) -> f64 {
        let beta = self.beta.at(s);
        beta * self.t_w0_inflated(alpha) + self.t_w1_decoupled(alpha)
    }

    /// Eq. 4: the full model with the per-element overhead `D/S·o`.
    pub fn decoupled(&self, alpha: f64, s: f64) -> f64 {
        let beta = self.beta.at(s);
        let overhead = self.data_d as f64 / s * self.overhead_o;
        beta * (self.t_w0_inflated(alpha) + overhead) + self.t_w1_decoupled(alpha)
    }

    /// Best-available prediction: Eq. 4 is derived under the paper's
    /// pessimistic assumption that `Op1` finishes after `Op0`; when the
    /// decoupled operation is *not* the tail, the compute group's own
    /// runtime is the binding bound. `predict` combines Eq. 4 with the two
    /// trivial lower bounds (either group alone).
    pub fn predict(&self, alpha: f64, s: f64) -> f64 {
        self.decoupled(alpha, s).max(self.t_w0_inflated(alpha)).max(self.t_w1_decoupled(alpha))
    }

    /// Predicted speedup of decoupling at `(α, S)` over conventional.
    pub fn speedup(&self, alpha: f64, s: f64) -> f64 {
        self.conventional() / self.decoupled(alpha, s)
    }

    /// Grid-search the best group fraction for a fixed granularity over
    /// the realisable fractions `1/k` (one consumer per `k` ranks).
    /// Returns `(α, predicted time)`.
    pub fn optimal_alpha(&self, s: f64) -> (f64, f64) {
        let mut best = (0.5, self.decoupled(0.5, s));
        for k in 3..=self.p.max(2) {
            let alpha = 1.0 / k as f64;
            if (alpha * self.p as f64) < 1.0 {
                break;
            }
            let t = self.decoupled(alpha, s);
            if t < best.1 {
                best = (alpha, t);
            }
        }
        best
    }

    /// Grid-search the best granularity for a fixed α over a log-spaced
    /// sweep of element sizes. Returns `(S, predicted time)`.
    pub fn optimal_granularity(&self, alpha: f64, s_min: f64, s_max: f64) -> (f64, f64) {
        assert!(s_min > 0.0 && s_max >= s_min);
        let mut best = (s_min, f64::INFINITY);
        let steps = 200;
        for i in 0..=steps {
            let s = s_min * (s_max / s_min).powf(i as f64 / steps as f64);
            let t = self.decoupled(alpha, s);
            if t < best.1 {
                best = (s, t);
            }
        }
        best
    }
}

/// A point of the Figure-3 style schedule comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleComparison {
    pub conventional: f64,
    pub nonblocking: f64,
    pub decoupled: f64,
}

/// Regenerate the Figure 3 comparison quantitatively: the conventional
/// staged run pays both operations plus the full imbalance penalty;
/// non-blocking operations absorb most idle time but cannot pipeline the
/// coupled operations; decoupling pipelines them per Eq. 4.
pub fn figure3(scn: &Scenario, alpha: f64, s: f64) -> ScheduleComparison {
    ScheduleComparison {
        conventional: scn.conventional(),
        // Non-blocking hides waiting inside the operations but the two
        // operations still run back-to-back on every process; a residual
        // quarter of the imbalance shows at the final synchronization.
        nonblocking: scn.t_w0 + scn.t_w1 + 0.25 * scn.t_sigma,
        decoupled: scn.decoupled(alpha, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Fig.5-flavoured scenario: Op1 is a collective whose conventional
    /// per-process cost at P=128 is substantial and LogP-bound.
    fn scenario() -> Scenario {
        Scenario {
            t_w0: 10.0,
            t_w1: 6.0,
            complexity: Complexity::LogP,
            t_sigma: 1.0,
            data_d: 1 << 30,
            overhead_o: 1e-6,
            p: 128,
            beta: Beta::new(0.05, 1e6),
            op1_optimization: 1.0,
        }
    }

    #[test]
    fn eq1_is_the_plain_sum() {
        let s = scenario();
        assert!((s.conventional() - 17.0).abs() < 1e-12);
    }

    #[test]
    fn rescale_families_behave() {
        assert!((Complexity::Divisible.rescale(128, 8) - 16.0).abs() < 1e-12);
        assert!(Complexity::LogP.rescale(128, 8) < 1.0, "smaller group is cheaper");
        assert!((Complexity::LinearP.rescale(128, 8) - 8.0 / 128.0).abs() < 1e-12);
        let g = Complexity::PowerP { gamma: -1.0 };
        assert!((g.rescale(128, 8) - Complexity::Divisible.rescale(128, 8)).abs() < 1e-12);
        // Identity when group unchanged.
        for c in [
            Complexity::Divisible,
            Complexity::LogP,
            Complexity::LinearP,
            Complexity::PowerP { gamma: 0.3 },
        ] {
            assert!((c.rescale(64, 64) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_limits_are_correct() {
        let b = Beta::new(0.1, 1e6);
        assert!(b.at(1.0) < 0.101, "fine granularity approaches beta_min");
        assert!(b.at(1e12) > 0.999, "huge elements cannot pipeline");
        let mut prev = 0.0;
        for i in 0..40 {
            let s = 10f64.powf(i as f64 / 4.0);
            let v = b.at(s);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn eq3_interpolates_between_sum_and_decoupled_op() {
        let mut s = scenario();
        // Perfect pipeline: time = decoupled op only.
        s.beta = Beta::new(0.0, 1e30);
        let t_perfect = s.decoupled_pipelined(0.0625, 1.0);
        assert!((t_perfect - s.t_w1_decoupled(0.0625)).abs() < 1e-6);
        // No pipeline (beta -> 1 for huge elements): time = inflated sum.
        s.beta = Beta::new(0.0, 1e-6);
        let t_none = s.decoupled_pipelined(0.0625, 1e12);
        let expect = s.t_w0_inflated(0.0625) + s.t_w1_decoupled(0.0625);
        assert!((t_none - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn overhead_term_penalises_tiny_elements() {
        let s = scenario();
        let t_tiny = s.decoupled(0.0625, 8.0); // 8-byte elements: huge D/S·o
        let t_good = s.decoupled(0.0625, 64e3);
        assert!(t_tiny > t_good, "tiny {t_tiny} vs good {t_good}");
    }

    #[test]
    fn eq4_has_an_interior_granularity_optimum() {
        let s = scenario();
        let (s_star, t_star) = s.optimal_granularity(0.0625, 8.0, 1e9);
        assert!(s_star > 8.0 * 1.01 && s_star < 1e9 * 0.99, "interior, got {s_star}");
        assert!(t_star <= s.decoupled(0.0625, 8.0));
        assert!(t_star <= s.decoupled(0.0625, 1e9));
    }

    #[test]
    fn decoupling_a_logp_collective_wins_and_gap_widens_with_scale() {
        // The Fig. 5 story: the reference reduce (Iallgatherv of the key
        // union + dense Ireduce) moves O(P)-growing per-process data, so
        // its conventional cost grows ~linearly with P while the decoupled
        // streaming reduce stays divisible. Speedup must exceed 1 and
        // widen with P.
        let speedup_at = |p: usize| {
            let mut s = scenario();
            s.p = p;
            s.t_w1 = 0.02 * p as f64; // allgatherv-style linear growth
            s.complexity = Complexity::LinearP;
            s.t_w0 = 10.0;
            s.speedup(0.0625, 64e3)
        };
        let s128 = speedup_at(128);
        let s8192 = speedup_at(8192);
        assert!(s128 > 1.0, "decoupling should already win at 128: {s128}");
        assert!(s8192 > s128, "gap must widen with scale: {s128} vs {s8192}");
    }

    #[test]
    fn divisible_work_gains_only_from_pipelining() {
        // With Divisible complexity and no pipelining possible, decoupling
        // cannot beat conventional (Eq. 4 degenerates to the inflated sum).
        let s = Scenario {
            t_w0: 10.0,
            t_w1: 2.0,
            complexity: Complexity::Divisible,
            t_sigma: 0.5,
            data_d: 1 << 20,
            overhead_o: 1e-7,
            p: 64,
            beta: Beta::new(1.0, 1e6), // beta == 1 everywhere: no pipeline
            op1_optimization: 1.0,
        };
        assert!(s.decoupled(0.25, 64e3) > s.conventional());
        // But with good pipelining it can.
        let s2 = Scenario { beta: Beta::new(0.0, 1e9), ..s };
        assert!(s2.decoupled(0.25, 64e3) < s2.conventional());
    }

    #[test]
    fn optimal_alpha_is_interior_for_balanced_costs() {
        let s = scenario();
        let (alpha, t) = s.optimal_alpha(64e3);
        assert!((1.0 / 128.0..=0.5).contains(&alpha), "got {alpha}");
        assert!(t < s.conventional(), "optimum must beat conventional");
    }

    #[test]
    fn figure3_ordering_matches_the_paper() {
        let s = scenario();
        let f = figure3(&s, 0.0625, 64e3);
        assert!(f.nonblocking < f.conventional, "non-blocking absorbs idle time");
        assert!(f.decoupled < f.nonblocking, "decoupling additionally pipelines");
    }
}

/// Calibration utilities: fit the β(S) pipelining curve of Eq. 4 to
/// measured `(granularity, time)` sweeps, so the model can be anchored to
/// simulator (or real-machine) observations.
pub mod fit {
    use super::{Beta, Scenario};

    /// Sum of squared relative errors of the model against measurements
    /// at fixed α.
    pub fn sse(scn: &Scenario, alpha: f64, data: &[(f64, f64)]) -> f64 {
        data.iter()
            .map(|&(s, t)| {
                let m = scn.predict(alpha, s);
                let e = (m - t) / t.max(1e-12);
                e * e
            })
            .sum()
    }

    /// Grid-search `(beta_min, s0)` minimising [`sse`] over a measured
    /// granularity sweep. Returns the fitted curve and its residual.
    pub fn fit_beta(scn: &Scenario, alpha: f64, data: &[(f64, f64)]) -> (Beta, f64) {
        assert!(!data.is_empty(), "need at least one measurement");
        let mut best = (scn.beta, f64::INFINITY);
        for ib in 0..=20 {
            let beta_min = ib as f64 / 20.0;
            for is in 0..=40 {
                // s0 from 1 byte to 1 GB, log-spaced.
                let s0 = 10f64.powf(is as f64 * 9.0 / 40.0);
                let candidate = Beta::new(beta_min, s0);
                let mut test = scn.clone();
                test.beta = candidate;
                let err = sse(&test, alpha, data);
                if err < best.1 {
                    best = (candidate, err);
                }
            }
        }
        best
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::{Complexity, Scenario};

        fn scenario(beta: Beta) -> Scenario {
            Scenario {
                t_w0: 1.0,
                t_w1: 0.5,
                complexity: Complexity::Divisible,
                t_sigma: 0.05,
                data_d: 1 << 28,
                overhead_o: 2e-6,
                p: 64,
                beta,
                op1_optimization: 4.0,
            }
        }

        #[test]
        fn fit_recovers_the_generating_curve() {
            let truth = Beta::new(0.15, 1e5);
            let scn = scenario(truth);
            // Synthesise noiseless measurements from the true model.
            let data: Vec<(f64, f64)> = (0..12)
                .map(|i| {
                    let s = 10f64.powf(2.0 + i as f64 * 0.5);
                    (s, scn.predict(0.125, s))
                })
                .collect();
            // Start the fit from a wrong curve.
            let start = scenario(Beta::new(0.9, 1e2));
            let (fitted, err) = fit_beta(&start, 0.125, &data);
            assert!(err < 1e-3, "residual {err}");
            assert!((fitted.beta_min - truth.beta_min).abs() <= 0.05, "{fitted:?}");
        }

        #[test]
        fn sse_is_zero_on_perfect_model() {
            let scn = scenario(Beta::new(0.2, 1e4));
            let data: Vec<(f64, f64)> =
                (1..5).map(|i| (1e3 * i as f64, scn.predict(0.25, 1e3 * i as f64))).collect();
            assert!(sse(&scn, 0.25, &data) < 1e-20);
        }
    }
}

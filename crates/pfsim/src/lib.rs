//! # pfsim — a parallel filesystem model
//!
//! Models the Lustre-class storage behind the paper's particle-I/O
//! experiment (Fig. 8) at the fidelity the experiment needs:
//!
//! - **OSTs** (object storage targets): `n_ost` parallel FIFO lanes, each
//!   sustaining `ost_bandwidth`. Large writes are striped across lanes in
//!   `stripe_size` chunks, so aggregate bandwidth grows with OST count but
//!   contends across clients.
//! - **Metadata server**: a single FIFO lane charging `meta_latency` per
//!   operation — `open`, and crucially the per-iteration *file view*
//!   redefinition that `MPI_File_write_all` needs when the data layout
//!   changes every dump (all P ranks hit it, serializing).
//! - **Shared file pointer**: a FIFO lock whose holder performs its
//!   transfer before releasing — the known pathology that makes
//!   `MPI_File_write_shared` collapse at scale.
//!
//! The model is expressed in `desim` virtual time and is MPI-agnostic; the
//! application layer (`apps::pic::io_*`) combines it with `mpisim`
//! communication for the two-phase collective write and the decoupled
//! I/O-group variant.

use std::collections::VecDeque;
use std::sync::Arc;

use desim::{Ctx, FifoServer, Pid, SimDuration, SimTime};
use parking_lot::Mutex;

/// Parallel filesystem parameters.
#[derive(Clone, Debug)]
pub struct PfsConfig {
    /// Number of object storage targets.
    pub n_ost: usize,
    /// Sustained bandwidth per OST, bytes/s.
    pub ost_bandwidth: f64,
    /// Per-request fixed cost on an OST (RPC + seek).
    pub ost_request_overhead: SimDuration,
    /// Stripe size used to spread large transfers across OSTs.
    pub stripe_size: u64,
    /// Cost of one metadata operation (open, file-view update, ...).
    pub meta_latency: SimDuration,
    /// Cost of acquiring/updating the shared file pointer.
    pub shared_pointer_latency: SimDuration,
    /// Per-client link bandwidth to the filesystem, bytes/s.
    pub client_bandwidth: f64,
}

impl Default for PfsConfig {
    fn default() -> Self {
        PfsConfig {
            n_ost: 16,
            ost_bandwidth: 2.0e9,
            ost_request_overhead: SimDuration::from_micros(200),
            stripe_size: 4 << 20,
            meta_latency: SimDuration::from_micros(500),
            shared_pointer_latency: SimDuration::from_micros(300),
            client_bandwidth: 4.0e9,
        }
    }
}

struct SharedPointer {
    held: bool,
    queue: VecDeque<Pid>,
}

struct Accounting {
    bytes_written: u64,
    bytes_read: u64,
    writes: u64,
    meta_ops: u64,
    shared_writes: u64,
}

/// One simulated filesystem instance, shared by all ranks of a run.
#[derive(Clone)]
pub struct Pfs {
    config: PfsConfig,
    osts: FifoServer,
    meta: FifoServer,
    pointer: Arc<Mutex<SharedPointer>>,
    acct: Arc<Mutex<Accounting>>,
}

impl Pfs {
    pub fn new(config: PfsConfig) -> Pfs {
        let osts = FifoServer::new(config.n_ost, config.ost_bandwidth, config.ost_request_overhead);
        // The metadata server's "bandwidth" is irrelevant; requests carry
        // zero bytes and cost `meta_latency` each.
        let meta = FifoServer::new(1, 1e18, config.meta_latency);
        Pfs {
            config,
            osts,
            meta,
            pointer: Arc::new(Mutex::new(SharedPointer { held: false, queue: VecDeque::new() })),
            acct: Arc::new(Mutex::new(Accounting {
                bytes_written: 0,
                bytes_read: 0,
                writes: 0,
                meta_ops: 0,
                shared_writes: 0,
            })),
        }
    }

    pub fn config(&self) -> &PfsConfig {
        &self.config
    }

    /// A metadata operation: open, close, stat, or a collective file-view
    /// (re)definition. All clients serialize through the metadata server.
    pub fn meta_op(&self, ctx: &mut Ctx) {
        // FIFO servers are call-order resources: surrender any lazy local
        // lead so submissions arrive in virtual-time order (see
        // `Ctx::commit_lag`).
        ctx.commit_lag();
        let done = self.meta.submit(ctx.now(), 0);
        let wait = done.since(ctx.now());
        ctx.advance(wait);
        self.acct.lock().meta_ops += 1;
    }

    /// Independent striped write of `bytes` (the data path of a collective
    /// or aggregated write): chunks of `stripe_size` go to successive OST
    /// lanes; the client blocks until the last chunk lands, and can never
    /// exceed its own link bandwidth.
    pub fn write_striped(&self, ctx: &mut Ctx, bytes: u64) -> SimTime {
        ctx.commit_lag(); // call-order resource; see `meta_op`
        let done = self.submit_striped(ctx.now(), bytes);
        let client_done =
            ctx.now() + SimDuration::from_bytes_at(bytes.max(1), self.config.client_bandwidth);
        let finish = done.max(client_done);
        let wait = finish.since(ctx.now());
        ctx.advance(wait);
        {
            let mut a = self.acct.lock();
            a.bytes_written += bytes;
            a.writes += 1;
        }
        finish
    }

    /// Striped read of `bytes` (same path as [`Pfs::write_striped`]).
    pub fn read_striped(&self, ctx: &mut Ctx, bytes: u64) -> SimTime {
        ctx.commit_lag(); // call-order resource; see `meta_op`
        let done = self.submit_striped(ctx.now(), bytes);
        let client_done =
            ctx.now() + SimDuration::from_bytes_at(bytes.max(1), self.config.client_bandwidth);
        let finish = done.max(client_done);
        let wait = finish.since(ctx.now());
        ctx.advance(wait);
        {
            let mut a = self.acct.lock();
            a.bytes_read += bytes;
        }
        finish
    }

    fn submit_striped(&self, now: SimTime, bytes: u64) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let stripe = self.config.stripe_size.max(1);
        let mut remaining = bytes;
        let mut last = now;
        while remaining > 0 {
            let chunk = remaining.min(stripe);
            last = last.max(self.osts.submit(now, chunk));
            remaining -= chunk;
        }
        last
    }

    /// `MPI_File_write_shared`-style write: acquire the shared file
    /// pointer (FIFO), update it, perform the transfer *while holding it*
    /// (the consistency semantics the MPI library must enforce without a
    /// file view), release. Writers fully serialize.
    pub fn write_shared(&self, ctx: &mut Ctx, bytes: u64) {
        // The pointer queue is a lock: both the acquisition order *and* the
        // hold interval are mediated by execution order, so the whole
        // operation runs on committed (eventful) time — a lazy hold would
        // release at a kernel clock that never moved, letting the next
        // writer's interval overlap this one's.
        ctx.commit_lag();
        self.pointer_lock(ctx);
        ctx.advance(self.config.shared_pointer_latency);
        ctx.commit_lag();
        // Transfer through a single OST lane's worth of bandwidth — shared
        // pointer writes do not stripe effectively.
        let rate = self.config.ost_bandwidth.min(self.config.client_bandwidth);
        ctx.advance(self.config.ost_request_overhead);
        ctx.commit_lag();
        ctx.advance(SimDuration::from_bytes_at(bytes, rate));
        ctx.commit_lag();
        self.pointer_unlock(ctx);
        {
            let mut a = self.acct.lock();
            a.bytes_written += bytes;
            a.writes += 1;
            a.shared_writes += 1;
        }
    }

    fn pointer_lock(&self, ctx: &mut Ctx) {
        let me = ctx.pid();
        {
            let mut p = self.pointer.lock();
            if !p.held && p.queue.is_empty() {
                p.held = true;
                return;
            }
            p.queue.push_back(me);
        }
        loop {
            ctx.suspend("pfs-shared-pointer");
            let mut p = self.pointer.lock();
            if !p.held && p.queue.front() == Some(&me) {
                p.queue.pop_front();
                p.held = true;
                return;
            }
        }
    }

    fn pointer_unlock(&self, ctx: &Ctx) {
        let next = {
            let mut p = self.pointer.lock();
            assert!(p.held, "unlock of free shared pointer");
            p.held = false;
            p.queue.front().copied()
        };
        if let Some(pid) = next {
            let k = ctx.kernel();
            k.schedule_at(k.now(), pid);
        }
    }

    /// Total bytes written so far (conservation checks).
    pub fn bytes_written(&self) -> u64 {
        self.acct.lock().bytes_written
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.acct.lock().bytes_read
    }

    /// Number of completed write calls.
    pub fn writes(&self) -> u64 {
        self.acct.lock().writes
    }

    /// Number of metadata operations performed.
    pub fn meta_ops(&self) -> u64 {
        self.acct.lock().meta_ops
    }

    /// Number of shared-pointer writes performed.
    pub fn shared_writes(&self) -> u64 {
        self.acct.lock().shared_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{SimConfig, Simulation};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fast_meta_cfg() -> PfsConfig {
        PfsConfig {
            n_ost: 4,
            ost_bandwidth: 1e9,
            ost_request_overhead: SimDuration::ZERO,
            stripe_size: 1 << 20,
            meta_latency: SimDuration::from_micros(100),
            shared_pointer_latency: SimDuration::from_micros(10),
            client_bandwidth: 1e12,
        }
    }

    #[test]
    fn striped_write_uses_all_osts() {
        // 4 MB over 4 OSTs at 1 GB/s each with 1 MB stripes: ~1 ms, not 4.
        let mut sim = Simulation::new(SimConfig::default());
        let pfs = Pfs::new(fast_meta_cfg());
        let p2 = pfs.clone();
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        sim.spawn("w", move |ctx| {
            p2.write_striped(ctx, 4 << 20);
            t2.store(ctx.now().as_nanos(), Ordering::SeqCst);
        });
        sim.run_expect();
        let secs = t.load(Ordering::SeqCst) as f64 / 1e9;
        assert!((secs - 1.048e-3).abs() < 1e-4, "got {secs}");
        assert_eq!(pfs.bytes_written(), 4 << 20);
    }

    #[test]
    fn client_bandwidth_caps_transfer() {
        let cfg = PfsConfig { client_bandwidth: 0.5e9, ..fast_meta_cfg() };
        let mut sim = Simulation::new(SimConfig::default());
        let pfs = Pfs::new(cfg);
        let t = Arc::new(AtomicU64::new(0));
        let (p2, t2) = (pfs.clone(), t.clone());
        sim.spawn("w", move |ctx| {
            p2.write_striped(ctx, 4 << 20);
            t2.store(ctx.now().as_nanos(), Ordering::SeqCst);
        });
        sim.run_expect();
        // 4 MB at 0.5 GB/s client link = ~8.4 ms despite fast OSTs.
        let secs = t.load(Ordering::SeqCst) as f64 / 1e9;
        assert!(secs > 8e-3, "client link must cap, got {secs}");
    }

    #[test]
    fn shared_writes_fully_serialize() {
        const N: usize = 8;
        let mut sim = Simulation::new(SimConfig::default());
        let pfs = Pfs::new(fast_meta_cfg());
        let t = Arc::new(AtomicU64::new(0));
        for i in 0..N {
            let (p2, t2) = (pfs.clone(), t.clone());
            sim.spawn(format!("w{i}"), move |ctx| {
                p2.write_shared(ctx, 1 << 20); // ~1 ms each + 10us pointer
                t2.fetch_max(ctx.now().as_nanos(), Ordering::SeqCst);
            });
        }
        sim.run_expect();
        let secs = t.load(Ordering::SeqCst) as f64 / 1e9;
        let serial = N as f64 * ((1 << 20) as f64 / 1e9 + 10e-6);
        assert!(secs >= serial * 0.99, "shared writes must serialize: {secs} vs {serial}");
        assert_eq!(pfs.shared_writes(), N as u64);
    }

    #[test]
    fn shared_pointer_is_granted_fifo() {
        let mut sim = Simulation::new(SimConfig::default());
        let pfs = Pfs::new(fast_meta_cfg());
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4usize {
            let (p2, o2) = (pfs.clone(), order.clone());
            sim.spawn(format!("w{i}"), move |ctx| {
                ctx.advance(SimDuration::from_nanos(i as u64 * 10));
                p2.write_shared(ctx, 1000);
                o2.lock().push(i);
            });
        }
        sim.run_expect();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn metadata_server_serializes_view_updates() {
        const N: usize = 16;
        let mut sim = Simulation::new(SimConfig::default());
        let pfs = Pfs::new(fast_meta_cfg());
        let t = Arc::new(AtomicU64::new(0));
        for i in 0..N {
            let (p2, t2) = (pfs.clone(), t.clone());
            sim.spawn(format!("m{i}"), move |ctx| {
                p2.meta_op(ctx);
                t2.fetch_max(ctx.now().as_nanos(), Ordering::SeqCst);
            });
        }
        sim.run_expect();
        // 16 clients x 100us serialized = 1.6 ms.
        assert_eq!(t.load(Ordering::SeqCst), 1_600_000);
        assert_eq!(pfs.meta_ops(), N as u64);
    }

    #[test]
    fn reads_account_separately_from_writes() {
        let mut sim = Simulation::new(SimConfig::default());
        let pfs = Pfs::new(fast_meta_cfg());
        let p2 = pfs.clone();
        sim.spawn("rw", move |ctx| {
            p2.read_striped(ctx, 1000);
            p2.write_striped(ctx, 500);
        });
        sim.run_expect();
        assert_eq!(pfs.bytes_read(), 1000);
        assert_eq!(pfs.bytes_written(), 500);
        assert_eq!(pfs.writes(), 1);
    }

    #[test]
    fn zero_byte_write_is_cheap_but_counted() {
        let mut sim = Simulation::new(SimConfig::default());
        let pfs = Pfs::new(fast_meta_cfg());
        let p2 = pfs.clone();
        sim.spawn("w", move |ctx| {
            let before = ctx.now();
            p2.write_striped(ctx, 0);
            assert!(ctx.now().since(before) < SimDuration::from_micros(1));
        });
        sim.run_expect();
        assert_eq!(pfs.writes(), 1);
        assert_eq!(pfs.bytes_written(), 0);
    }

    #[test]
    fn aggregated_writes_beat_many_small_shared_writes() {
        // The mechanism behind Fig. 8: one buffered writer flushing 16 MB
        // beats 16 ranks each shared-writing 1 MB.
        fn run(shared: bool) -> f64 {
            let mut sim = Simulation::new(SimConfig::default());
            let pfs = Pfs::new(PfsConfig::default());
            let t = Arc::new(AtomicU64::new(0));
            if shared {
                for i in 0..16 {
                    let (p2, t2) = (pfs.clone(), t.clone());
                    sim.spawn(format!("w{i}"), move |ctx| {
                        p2.write_shared(ctx, 1 << 20);
                        t2.fetch_max(ctx.now().as_nanos(), Ordering::SeqCst);
                    });
                }
            } else {
                let (p2, t2) = (pfs.clone(), t.clone());
                sim.spawn("agg", move |ctx| {
                    p2.write_striped(ctx, 16 << 20);
                    t2.fetch_max(ctx.now().as_nanos(), Ordering::SeqCst);
                });
            }
            sim.run_expect();
            t.load(Ordering::SeqCst) as f64 / 1e9
        }
        let t_shared = run(true);
        let t_agg = run(false);
        assert!(
            t_agg * 2.0 < t_shared,
            "aggregated {t_agg} should be well under shared {t_shared}"
        );
    }
}

//! The replicated consumer driver: a VSR group wrapped around one
//! [`Stream`] endpoint.
//!
//! Every rank in the channel's consumer list calls
//! [`run_replicated`]; `consumers[0]` starts as the view-0 primary and
//! drains the stream, the rest are standbys. The primary folds each
//! arriving batch into the accumulator, snapshots `(accumulator, cursor
//! checkpoint)` and replicates it through the [`VsrCore`] **before any
//! credit returns to a producer** — a credit doubles as a durability
//! acknowledgement, so producers may drop acknowledged elements from
//! their replay buffers. When the primary dies, the standbys elect a
//! successor, which restores the last committed snapshot, quarantines
//! every unfinished producer's data tag (stale batches addressed to a
//! previous reign must not fold — the quarantine lifts on the
//! producer's post-announce [`StreamMsg::Mark`]), tells every producer
//! the exact element cursor it holds ([`TakeoverMsg::Announce`]), and
//! resumes the drain; producers replay only the uncommitted suffix, so
//! every element is folded into the surviving state exactly once.
//! Credits leave stamped with the issuing primary's view
//! ([`CreditMsg`]), so a producer never mistakes a deposed reign's
//! acknowledgement for the current one.
//!
//! [`StreamMsg::Mark`]: mpistream::StreamMsg::Mark
//!
//! Timing sits on top of the channel's failure-detection hierarchy: with
//! `failure_timeout = t`, producers give up on a consumer after `t` and
//! consumers on a producer after `2t`, while the replica group's
//! patience (default `4t`,
//! [`ChannelConfig::effective_replication_patience`]) makes failover the
//! slowest, most deliberate detector. The primary heartbeats at a
//! quarter of the patience, so four consecutive losses are needed for a
//! spurious view change.
//!
//! [`ChannelConfig::effective_replication_patience`]:
//! mpistream::ChannelConfig::effective_replication_patience

use std::ops::ControlFlow;

use mpistream::transport::{SimDuration, Src, Tag, Transport};
use mpistream::wire::Wire;
use mpistream::{ConsumerCheckpoint, Stream, StreamChannel};

use crate::producer::{CreditMsg, TakeoverMsg};
use crate::vsr::{Effect, Snapshot, VsrCore, VsrMsg};

/// The full replicated state of one consumer endpoint: the operator
/// accumulator (as a [`Wire`] frame) plus the stream's cursor
/// checkpoint. One `RepState` frame is the snapshot payload of every
/// VSR prepare.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepState {
    /// The accumulator, encoded with its own [`Wire`] impl.
    pub acc: Vec<u8>,
    /// The stream endpoint's durable cursors and statistics.
    pub ckpt: ConsumerCheckpoint,
}

mpistream::wire_struct!(RepState { acc, ckpt });

/// How this rank's participation in the replica group ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Finished as the (final) primary: this rank drained the stream to
    /// completion and its returned state is the canonical one.
    Primary,
    /// Finished as a standby: the returned state is the final committed
    /// snapshot received from the primary.
    Standby,
    /// The fold callback returned [`ControlFlow::Break`]: this rank
    /// stopped abruptly mid-stream *without* committing or releasing
    /// credits, simulating a crash. The returned state is the local
    /// (possibly uncommitted) view.
    Died,
}

/// What [`run_replicated`] produced on this rank.
#[derive(Clone, Debug)]
pub struct ReplicaOutcome<A> {
    /// How this rank finished.
    pub role: ReplicaRole,
    /// The view in which it finished.
    pub view: u64,
    /// Checkpoints this rank committed *as primary* (0 for a pure
    /// standby).
    pub commits: u64,
    /// The final accumulator (see [`ReplicaRole`] for whose state it is).
    pub state: A,
    /// The final cursor checkpoint accompanying `state`.
    pub checkpoint: ConsumerCheckpoint,
}

/// Modelled wire size of a protocol message (header + inline snapshot).
fn msg_bytes(msg: &VsrMsg) -> u64 {
    match msg {
        VsrMsg::Prepare { state, .. } => 25 + state.len() as u64,
        VsrMsg::DoViewChange { snapshot, .. } | VsrMsg::StartView { snapshot, .. } => {
            41 + snapshot.state.len() as u64
        }
        VsrMsg::RecoveryResponse { primary: Some((s, _)), .. } => 33 + s.state.len() as u64,
        _ => 24,
    }
}

/// Send the transport-facing effects, collecting protocol milestones.
fn apply_effects<TP: Transport>(
    rank: &mut TP,
    group: &[usize],
    me: usize,
    tag: Tag,
    effects: Vec<Effect>,
    milestones: &mut Vec<Effect>,
) {
    for e in effects {
        match e {
            Effect::Send { to, msg } => rank.send(group[to], tag, msg_bytes(&msg), msg),
            Effect::Broadcast { msg } => {
                for (i, &dst) in group.iter().enumerate() {
                    if i != me {
                        rank.send(dst, tag, msg_bytes(&msg), msg.clone());
                    }
                }
            }
            other => milestones.push(other),
        }
    }
}

/// Run this rank's replica of the channel's consumer group to
/// completion. Collective over the channel's consumer list (every
/// member must call it); producers use
/// [`ReplicatedProducer`](crate::ReplicatedProducer).
///
/// `fold` is the stream operator: called once per element (on whichever
/// rank is currently primary) with the transport, the accumulator and
/// the element. Returning [`ControlFlow::Break`] makes this rank stop
/// abruptly — no checkpoint, no credits — which is how the native
/// backend (whose threads cannot be killed) exercises failover; on the
/// simulator and socket backends a fault injection usually kills the
/// process inside `fold` instead.
///
/// The accumulator type `A` must encode deterministically: every
/// replica starts from an identical `init` frame and only the primary's
/// folds mutate it, so any `Wire` impl whose encoding is a pure
/// function of the value works.
pub fn run_replicated<T, A, TP, F>(
    rank: &mut TP,
    channel: &StreamChannel,
    init: A,
    mut fold: F,
) -> ReplicaOutcome<A>
where
    T: Wire + Send + 'static,
    A: Wire,
    TP: Transport,
    F: FnMut(&mut TP, &mut A, T) -> ControlFlow<()>,
{
    let group: Vec<usize> =
        channel.replica_group().expect("run_replicated on an unreplicated channel").to_vec();
    let me = group
        .iter()
        .position(|&w| w == rank.world_rank())
        .expect("run_replicated on a rank outside the channel's consumer group");
    let patience = channel
        .config()
        .effective_replication_patience()
        .expect("replicated config validated at channel creation");
    // Heartbeat / retransmission cadence: a backup must miss four
    // consecutive primary messages before it suspects a death.
    let tick = SimDuration((patience.0 / 4).max(1));
    let repl_tag = channel.repl_tag();
    let takeover_tag = channel.takeover_tag();

    let mut stream = Stream::<T>::attach(channel.clone());
    stream.hold_credits(true);
    let mut acc = init;
    let initial = RepState { acc: acc.to_frame(), ckpt: stream.consumer_checkpoint() }.to_frame();
    let mut core = VsrCore::new(me, group.len(), initial);
    let mut commits = 0u64;

    'role: loop {
        if core.is_primary() {
            // ---------------- primary ----------------
            loop {
                // Drain replication traffic that queued while we were on
                // the data path (late PrepareOks, view-change probes,
                // recovery requests).
                let mut milestones = Vec::new();
                while let Some((msg, _)) = rank.try_recv::<VsrMsg>(Src::Any, repl_tag) {
                    let eff = core.on_message(msg);
                    apply_effects(rank, &group, me, repl_tag, eff, &mut milestones);
                }
                if milestones.iter().any(|m| matches!(m, Effect::Finished)) {
                    // A Shutdown in a view at least as new as ours: we
                    // were deposed and the successor finished the stream.
                    return standby_outcome(&core, commits);
                }
                if !core.is_primary() {
                    continue 'role;
                }
                // Done once every producer's Term is inside a committed
                // checkpoint (their claims arrived and the covering
                // operation reached quorum).
                if stream.all_terminated() && core.idle() {
                    debug_assert!(channel
                        .producers()
                        .iter()
                        .all(|&p| stream.claim_of(p) == Some(stream.cursor_of(p))));
                    let shutdown = VsrMsg::Shutdown { view: core.view() };
                    for (i, &dst) in group.iter().enumerate() {
                        if i != me {
                            rank.send(dst, repl_tag, msg_bytes(&shutdown), shutdown.clone());
                        }
                    }
                    return ReplicaOutcome {
                        role: ReplicaRole::Primary,
                        view: core.view(),
                        commits,
                        checkpoint: stream.consumer_checkpoint(),
                        state: acc,
                    };
                }
                // One stream step, bounded by the heartbeat tick.
                let mut died = false;
                let deadline = rank.now() + tick;
                let ev = {
                    let acc = &mut acc;
                    let fold = &mut fold;
                    stream.step_deadline(rank, deadline, |r, elem| {
                        // After a Break, swallow the rest of the batch:
                        // the "crashed" rank must not keep folding.
                        if !died && fold(r, acc, elem).is_break() {
                            died = true;
                        }
                    })
                };
                let Some(ev) = ev else {
                    // Idle tick: heartbeat so the standbys stay patient.
                    let hb = VsrMsg::Commit { view: core.view(), commit_num: core.commit_num() };
                    for (i, &dst) in group.iter().enumerate() {
                        if i != me {
                            rank.send(dst, repl_tag, msg_bytes(&hb), hb.clone());
                        }
                    }
                    continue;
                };
                if died {
                    // Abrupt stop: no checkpoint, no credits, no goodbye —
                    // the standbys must detect the silence.
                    return ReplicaOutcome {
                        role: ReplicaRole::Died,
                        view: core.view(),
                        commits,
                        checkpoint: stream.consumer_checkpoint(),
                        state: acc,
                    };
                }
                if ev.elems == 0 && !ev.term {
                    // A quarantined stale message or an epoch Mark:
                    // nothing durable changed, nothing to replicate.
                    continue;
                }
                // Commit-before-credit-return: replicate the post-batch
                // state and wait for quorum before anything leaves.
                let snap =
                    RepState { acc: acc.to_frame(), ckpt: stream.consumer_checkpoint() }.to_frame();
                let bytes = snap.len() as u64;
                let t0 = rank.now();
                rank.prof_begin("repl-commit");
                let mut milestones = Vec::new();
                let eff = core.on_local_op(snap);
                apply_effects(rank, &group, me, repl_tag, eff, &mut milestones);
                while !milestones.iter().any(|m| matches!(m, Effect::Committed { .. })) {
                    match rank.recv_deadline::<VsrMsg>(Src::Any, repl_tag, rank.now() + tick) {
                        Some((msg, _)) => {
                            let eff = core.on_message(msg);
                            apply_effects(rank, &group, me, repl_tag, eff, &mut milestones);
                            if !core.is_primary() {
                                rank.prof_end("repl-commit");
                                continue 'role;
                            }
                        }
                        None => {
                            // Retransmit the in-flight Prepare: it doubles
                            // as the heartbeat and repairs lost messages
                            // (backups re-PrepareOk idempotently).
                            let p = VsrMsg::Prepare {
                                view: core.view(),
                                op_num: core.op_num(),
                                commit_num: core.commit_num(),
                                state: core.prepared_state().to_vec(),
                            };
                            for (i, &dst) in group.iter().enumerate() {
                                if i != me {
                                    rank.send(dst, repl_tag, msg_bytes(&p), p.clone());
                                }
                            }
                        }
                    }
                }
                rank.prof_end("repl-commit");
                commits += 1;
                rank.prof_repl_commit(channel.id(), bytes, (rank.now() - t0).as_nanos());
                // The checkpoint is durable on a majority: now the
                // producers may drop the acknowledged elements. Each
                // acknowledgement leaves stamped with this primary's
                // view, so a producer that already followed a successor
                // (or has not yet heard of us) can reject it locally
                // instead of relying on cross-tag ordering.
                for (src, acked) in stream.take_pending_credits() {
                    rank.check_credit_issued(channel.id(), src, acked);
                    let credit = CreditMsg { view: core.view(), acked };
                    rank.send(src, channel.credit_tag(), 16, credit);
                }
                if ev.term {
                    let ack = TakeoverMsg::TermAck { view: core.view() };
                    rank.send(ev.src, takeover_tag, 16, ack);
                }
            }
        } else {
            // ---------------- standby ----------------
            match rank.recv_deadline::<VsrMsg>(Src::Any, repl_tag, rank.now() + patience) {
                Some((msg, _)) => {
                    let mut milestones = Vec::new();
                    let eff = core.on_message(msg);
                    apply_effects(rank, &group, me, repl_tag, eff, &mut milestones);
                    for m in milestones {
                        match m {
                            Effect::Finished => return standby_outcome(&core, commits),
                            Effect::BecamePrimary { .. } => {
                                if takeover(rank, channel, &group, me, &mut core, tick, &mut stream)
                                {
                                    let rep = RepState::from_frame(core.committed_state())
                                        .expect("replicated state frame");
                                    acc = A::from_frame(&rep.acc).expect("accumulator frame");
                                }
                                continue 'role;
                            }
                            _ => {}
                        }
                    }
                }
                None => {
                    // Silence past the patience: suspect the primary.
                    let eff = core.on_timeout();
                    apply_effects(rank, &group, me, repl_tag, eff, &mut Vec::new());
                }
            }
        }
    }
}

/// Final outcome of a rank that ends as a standby: decode the last
/// committed snapshot it holds.
fn standby_outcome<A: Wire>(core: &VsrCore, commits: u64) -> ReplicaOutcome<A> {
    let rep = RepState::from_frame(core.committed_state()).expect("replicated state frame");
    ReplicaOutcome {
        role: ReplicaRole::Standby,
        view: core.view(),
        commits,
        state: A::from_frame(&rep.acc).expect("accumulator frame"),
        checkpoint: rep.ckpt,
    }
}

/// Complete a takeover after [`Effect::BecamePrimary`]: re-commit the
/// adopted snapshot in the new view, restore the committed checkpoint
/// into `stream`, quarantine every producer's data tag, and tell the
/// producers where the committed state stands. Returns `false` if a
/// yet-newer view deposed us mid-takeover (the caller goes back to
/// standby without touching its stream).
fn takeover<T, TP>(
    rank: &mut TP,
    channel: &StreamChannel,
    group: &[usize],
    me: usize,
    core: &mut VsrCore,
    tick: SimDuration,
    stream: &mut Stream<T>,
) -> bool
where
    T: Wire + Send + 'static,
    TP: Transport,
{
    let repl_tag = channel.repl_tag();
    // The adopted snapshot may be prepared-but-uncommitted — and it may
    // have been committed (credits released!) by the dead primary, so it
    // must reach quorum in this view before any cursor is announced.
    while !core.idle() {
        match rank.recv_deadline::<VsrMsg>(Src::Any, repl_tag, rank.now() + tick) {
            Some((msg, _)) => {
                let eff = core.on_message(msg);
                apply_effects(rank, group, me, repl_tag, eff, &mut Vec::new());
                if !core.is_primary() {
                    return false;
                }
            }
            None => {
                // Retransmit StartView: the PrepareOks it solicits are
                // what commit the adopted snapshot.
                let sv = VsrMsg::StartView {
                    view: core.view(),
                    snapshot: Snapshot {
                        op_num: core.op_num(),
                        state: core.prepared_state().to_vec(),
                    },
                    commit_num: core.commit_num(),
                };
                for (i, &dst) in group.iter().enumerate() {
                    if i != me {
                        rank.send(dst, repl_tag, msg_bytes(&sv), sv.clone());
                    }
                }
            }
        }
    }
    // Restore the committed checkpoint, then quarantine every
    // producer's data tag *before* announcing: messages addressed to an
    // earlier reign of this rank — still queued here, or in flight —
    // must not fold, because the replay the Announce solicits resends
    // the same suffix (the deposed-alive re-election hazard). Each
    // announced producer lifts its quarantine with `Mark(view)`, its
    // first post-announce message, so per-`(src, tag)` FIFO cuts the
    // stream exactly between stale and replayed traffic.
    let rep = RepState::from_frame(core.committed_state()).expect("replicated state frame");
    stream.restore_consumer(&rep.ckpt);
    // Announce the committed cursors. Producers whose Term is already
    // inside the committed checkpoint just get their acknowledgement
    // (their flow is complete — an Announce would solicit a duplicate
    // Term), and nothing further from them may ever fold; the rest
    // learn the cursor to replay from.
    let takeover_tag = channel.takeover_tag();
    let view = core.view();
    let claims: std::collections::HashMap<u64, u64> = rep.ckpt.claims.iter().copied().collect();
    for &p in channel.producers() {
        if claims.contains_key(&(p as u64)) {
            stream.quarantine_until_mark(p, u64::MAX);
            rank.send(p, takeover_tag, 16, TakeoverMsg::TermAck { view });
        } else {
            stream.quarantine_until_mark(p, view);
            let announce = TakeoverMsg::Announce { view, cursors: rep.ckpt.cursors.clone() };
            let bytes = 16 + 16 * rep.ckpt.cursors.len() as u64;
            rank.send(p, takeover_tag, bytes, announce);
        }
    }
    true
}

//! # replica — viewstamped-replicated consumer state
//!
//! The paper's decoupling strategy concentrates an application's
//! analysis or I/O into a *small* consumer group — which turns each
//! consumer rank into a single point of failure holding irreplaceable
//! state (operator accumulators, element cursors, flow-control ledgers).
//! This crate removes that single point: the channel's consumer group
//! becomes a **Viewstamped Replication** group (Oki & Liskov) whose
//! primary drains the stream while replicating `(accumulator, cursor
//! checkpoint)` snapshots to its standbys, and whose standbys elect and
//! seed a successor when the primary dies.
//!
//! The integration invariant is **commit-before-credit-return**: a
//! flow-control credit is only released to a producer after the
//! checkpoint covering the acknowledged elements reached a quorum of
//! replicas. Credits thereby double as durability acknowledgements —
//! producers keep every uncredited element in a replay buffer
//! ([`ReplicatedProducer`]) and, on takeover, resend exactly the suffix
//! above the committed cursor the successor announces. The surviving
//! state folds every stream element **exactly once**: nothing below the
//! cursor is resent, nothing above it ever released a credit.
//!
//! Three layers:
//! - [`vsr`]: the sans-io protocol core ([`VsrCore`]) — pure state
//!   machine, unit-testable without a transport.
//! - [`consumer`]: [`run_replicated`], the driver every consumer-group
//!   rank runs; primary and standby roles, heartbeats, takeover.
//! - [`producer`]: [`ReplicatedProducer`], the replay-buffering
//!   producer endpoint.
//!
//! Channel setup: `ChannelConfig { replicas: r, .. }` with `r + 1`
//! consumer ranks (see `mpistream::ChannelConfig::replicas`); surviving
//! one death needs `r >= 2` so a majority outlives the victim.

pub mod consumer;
pub mod producer;
pub mod vsr;

pub use consumer::{run_replicated, RepState, ReplicaOutcome, ReplicaRole};
pub use producer::{CreditMsg, ProducerFinish, ReplicatedProducer, TakeoverMsg};
pub use vsr::{Effect, Snapshot, Status, VsrCore, VsrMsg};

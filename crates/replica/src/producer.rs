//! The producer endpoint of a replicated channel.
//!
//! A [`ReplicatedProducer`] speaks the ordinary stream wire protocol on
//! the data tag ([`StreamMsg`], plus the replicated-only
//! [`StreamMsg::Mark`] epoch marker) but aims it at the replica group's
//! *current primary* instead of a fixed consumer, and keeps every
//! unacknowledged element in a replay buffer. Credits arrive as
//! view-stamped [`CreditMsg`] envelopes instead of the unreplicated
//! bare `u64`, so their applicability never depends on cross-tag
//! ordering between the credit tag and the takeover tag.
//! On a replicated channel a credit is only issued after the covering
//! checkpoint reached quorum (`crate::consumer`), so an acknowledged
//! element is durable and leaves the buffer; everything else is resent
//! to the successor when a [`TakeoverMsg::Announce`] names a new view.
//! The announce carries the committed element cursor, which the producer
//! uses to absorb credits that died with the old primary — the replayed
//! suffix starts exactly at the cursor, so the surviving state folds
//! every element exactly once.

use std::collections::VecDeque;

use mpistream::transport::{SimDuration, Src, Transport};
use mpistream::wire::{Wire, WireError};
use mpistream::{Role, StreamChannel, StreamMsg};

/// Messages from the replica group's primary to the producers, on the
/// channel's takeover tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TakeoverMsg {
    /// A new primary took over in `view`; `cursors` are the committed
    /// element cursors per producer world rank. Sent to producers whose
    /// flow is not yet complete: trim the replay buffer to your cursor
    /// and resend the rest to the primary of `view`.
    Announce {
        /// The new view.
        view: u64,
        /// `(producer world rank, committed element cursor)` pairs.
        cursors: Vec<(u64, u64)>,
    },
    /// The producer's `Term` claim is inside a committed checkpoint: its
    /// flow is durably complete and it may retire its replay buffer.
    TermAck {
        /// The acknowledging primary's view.
        view: u64,
    },
}

/// A credit acknowledgement on a *replicated* channel's credit tag:
/// the plain `u64` of unreplicated channels, wrapped in the issuing
/// primary's view. Credits double as durability acknowledgements here,
/// and the transport only orders messages per `(source, tag)` pair —
/// so a bare credit racing a takeover announce is ambiguous about
/// which reign issued it. The view stamp makes applicability local:
/// a producer applies a credit iff it matches its current view *and*
/// arrived from that view's primary, and drops everything else.
/// Dropping is safe in both directions: a stale credit's elements are
/// covered by the cursor a later announce carries, and a future-view
/// credit cannot arrive before its announce (the successor's
/// quarantine discards all pre-announce data, so post-takeover credit
/// is only ever generated from batches this producer sent *after*
/// processing the announce).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditMsg {
    /// The view of the primary that issued the credit.
    pub view: u64,
    /// Elements acknowledged as durably committed.
    pub acked: u64,
}

mpistream::wire_struct!(CreditMsg { view, acked });

impl Wire for TakeoverMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TakeoverMsg::Announce { view, cursors } => {
                out.push(0);
                view.encode(out);
                cursors.encode(out);
            }
            TakeoverMsg::TermAck { view } => {
                out.push(1);
                view.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(TakeoverMsg::Announce {
                view: u64::decode(input)?,
                cursors: Vec::decode(input)?,
            }),
            1 => Ok(TakeoverMsg::TermAck { view: u64::decode(input)? }),
            got => Err(WireError::BadDiscriminant { got }),
        }
    }
}

/// What [`ReplicatedProducer::finish`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProducerFinish {
    /// Distinct elements this producer injected into the stream.
    pub sent: u64,
    /// Elements re-sent to a successor primary after a takeover (already
    /// counted once in `sent`).
    pub resent: u64,
    /// Takeover announcements this producer acted on.
    pub takeovers: u64,
    /// The view in which the flow completed.
    pub view: u64,
}

/// Producer endpoint of a replicated channel. See the [module
/// docs](self).
pub struct ReplicatedProducer<T> {
    channel: StreamChannel,
    group: Vec<usize>,
    view: u64,
    agg: Vec<T>,
    /// Elements sent but not yet durably acknowledged, oldest first:
    /// `base + retx.len() == sent`.
    retx: VecDeque<T>,
    /// Elements known durable (committed at the replica group).
    base: u64,
    /// Elements handed to the wire.
    sent: u64,
    resent: u64,
    takeovers: u64,
    term_sent: bool,
}

impl<T: Wire + Clone + Send + 'static> ReplicatedProducer<T> {
    /// Wrap a producer endpoint of a replicated `channel`.
    pub fn new(channel: StreamChannel) -> ReplicatedProducer<T> {
        assert_eq!(channel.role(), Role::Producer, "ReplicatedProducer on a non-producer rank");
        let group = channel
            .replica_group()
            .expect("ReplicatedProducer on an unreplicated channel (use Stream::isend)")
            .to_vec();
        ReplicatedProducer {
            channel,
            group,
            view: 0,
            agg: Vec::new(),
            retx: VecDeque::new(),
            base: 0,
            sent: 0,
            resent: 0,
            takeovers: 0,
            term_sent: false,
        }
    }

    /// World rank of the primary of the current view.
    pub fn primary(&self) -> usize {
        self.group[(self.view % self.group.len() as u64) as usize]
    }

    /// The current view as this producer knows it.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// How long to block per wait tick: a quarter of the group's
    /// failover patience, so takeover announcements are polled well
    /// within any failover.
    fn tick(&self) -> SimDuration {
        let patience = self
            .channel
            .config()
            .effective_replication_patience()
            .expect("replicated config validated at channel creation");
        SimDuration((patience.0 / 4).max(1))
    }

    /// Inject one element (the replicated analogue of `Stream::isend`).
    /// Blocks only when the credit window is exhausted — and then keeps
    /// watching for takeover announcements, so a primary death cannot
    /// strand it.
    pub fn push<TP: Transport>(&mut self, rank: &mut TP, elem: T) {
        assert!(!self.term_sent, "push after finish");
        self.agg.push(elem);
        if self.agg.len() >= self.channel.config().aggregation {
            self.flush(rank);
        }
    }

    /// Flush the partially filled aggregation buffer.
    pub fn flush<TP: Transport>(&mut self, rank: &mut TP) {
        if self.agg.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.agg);
        self.send_batch(rank, batch);
    }

    fn send_batch<TP: Transport>(&mut self, rank: &mut TP, batch: Vec<T>) {
        let n = batch.len() as u64;
        if let Some(window) = self.channel.config().credits {
            while self.retx.len() as u64 + n > window as u64 {
                self.pump(rank);
            }
        }
        let bytes = n * self.channel.config().element_bytes;
        self.retx.extend(batch.iter().cloned());
        self.sent += n;
        rank.send(self.primary(), self.channel.data_tag(), bytes, StreamMsg::Data(batch));
    }

    /// One bounded wait for progress: drain credits and takeover
    /// traffic, blocking up to a tick on the credit tag.
    fn pump<TP: Transport>(&mut self, rank: &mut TP) {
        self.drain_takeover(rank);
        self.drain_credits(rank);
        let deadline = rank.now() + self.tick();
        if let Some((credit, info)) =
            rank.recv_deadline::<CreditMsg>(Src::Any, self.channel.credit_tag(), deadline)
        {
            self.absorb_credit(credit, info.src);
        }
    }

    /// Retire `credit.acked` elements iff the credit is stamped with
    /// this producer's current view and arrived from that view's
    /// primary. Anything else is dropped: a stale credit's elements are
    /// below the committed cursor the successor's announce carries, and
    /// a future-view credit cannot exist before its announce (see
    /// [`CreditMsg`]) — so there is nothing to buffer.
    fn absorb_credit(&mut self, credit: CreditMsg, src: usize) {
        if credit.view != self.view || src != self.primary() {
            return;
        }
        let take = credit.acked.min(self.retx.len() as u64);
        self.base += take;
        self.retx.drain(..take as usize);
    }

    fn drain_credits<TP: Transport>(&mut self, rank: &mut TP) {
        while let Some((credit, info)) =
            rank.try_recv::<CreditMsg>(Src::Any, self.channel.credit_tag())
        {
            self.absorb_credit(credit, info.src);
        }
    }

    /// Act on queued takeover traffic; returns `true` if a `TermAck`
    /// certified this producer's completed flow.
    fn drain_takeover<TP: Transport>(&mut self, rank: &mut TP) -> bool {
        let mut acked = false;
        while let Some((msg, _)) =
            rank.try_recv::<TakeoverMsg>(Src::Any, self.channel.takeover_tag())
        {
            acked |= self.on_takeover(rank, msg);
        }
        acked
    }

    fn on_takeover<TP: Transport>(&mut self, rank: &mut TP, msg: TakeoverMsg) -> bool {
        match msg {
            TakeoverMsg::TermAck { view } => {
                if view >= self.view {
                    self.view = view;
                    return true;
                }
                false
            }
            TakeoverMsg::Announce { view, cursors } => {
                if view <= self.view {
                    return false; // stale announce from an already-deposed view
                }
                self.view = view;
                self.takeovers += 1;
                let me = rank.world_rank() as u64;
                let cursor = cursors.iter().find(|&&(r, _)| r == me).map(|&(_, c)| c).unwrap_or(0);
                // Absorb credits that died with the old primary: every
                // element below the committed cursor is durable.
                if cursor > self.base {
                    let trim = (cursor - self.base).min(self.retx.len() as u64);
                    self.retx.drain(..trim as usize);
                    self.base = cursor;
                }
                // Open the new reign's flow with an epoch marker: the
                // successor quarantines our data tag at takeover, and
                // everything we sent before processing this announce —
                // batches addressed to an earlier reign of that very
                // rank — must stay behind the cut. Per-`(src, tag)`
                // FIFO puts the marker strictly after all of it.
                let aggregation = self.channel.config().aggregation;
                let element_bytes = self.channel.config().element_bytes;
                let primary = self.primary();
                let tag = self.channel.data_tag();
                rank.send(primary, tag, 16, StreamMsg::<T>::Mark(view));
                // Replay the uncommitted suffix to the successor — the
                // first resent element lands exactly on its cursor.
                let elems: Vec<T> = self.retx.iter().cloned().collect();
                for chunk in elems.chunks(aggregation.max(1)) {
                    let n = chunk.len() as u64;
                    self.resent += n;
                    rank.send(primary, tag, n * element_bytes, StreamMsg::Data(chunk.to_vec()));
                }
                if self.term_sent {
                    // Our Term never committed at the old primary (the
                    // successor would have TermAck'd instead): restate it.
                    rank.send(primary, tag, 16, StreamMsg::<T>::Term { sent: self.sent });
                }
                false
            }
        }
    }

    /// Close the flow: flush, send the `Term` claim, and wait until a
    /// primary certifies the claim is inside a committed checkpoint
    /// (re-claiming to successors across any takeovers). After this
    /// returns, every element this producer injected is durable at the
    /// replica group.
    pub fn finish<TP: Transport>(&mut self, rank: &mut TP) -> ProducerFinish {
        self.flush(rank);
        let tag = self.channel.data_tag();
        rank.send(self.primary(), tag, 16, StreamMsg::<T>::Term { sent: self.sent });
        self.term_sent = true;
        let mut acked = self.drain_takeover(rank);
        while !acked {
            self.drain_credits(rank);
            let deadline = rank.now() + self.tick();
            if let Some((msg, _)) =
                rank.recv_deadline::<TakeoverMsg>(Src::Any, self.channel.takeover_tag(), deadline)
            {
                acked = self.on_takeover(rank, msg);
            }
        }
        // Late credits (the ack certifies everything anyway).
        self.drain_credits(rank);
        ProducerFinish {
            sent: self.sent,
            resent: self.resent,
            takeovers: self.takeovers,
            view: self.view,
        }
    }
}

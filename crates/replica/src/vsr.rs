//! The sans-io Viewstamped Replication core.
//!
//! A [`VsrCore`] is one replica's protocol state machine, written without
//! any transport: callers feed it local operations
//! ([`VsrCore::on_local_op`]), incoming messages ([`VsrCore::on_message`])
//! and silence ([`VsrCore::on_timeout`]), and it returns a list of
//! [`Effect`]s — messages to send and protocol milestones (commits,
//! primary handover, shutdown) for the driver to act on. This is the
//! layering of vsr-rs (and of loom-style protocol cores in general): the
//! pure state machine is unit-testable by shuttling [`VsrMsg`] values
//! between cores in-process, while the transport-facing driver
//! (`crate::consumer`) stays a thin loop.
//!
//! ## Protocol shape
//!
//! Classic VSR (Oki & Liskov; the Liskov/Cowling revisit) specialised to
//! *full-state checkpoints*: every operation carries a complete snapshot
//! of the replicated state, so the log is always compacted to its last
//! entry and state transfer is "adopt the newest snapshot". That fits the
//! consumer-state use exactly — a [`mpistream::ConsumerCheckpoint`] plus
//! operator accumulator *is* the whole state — and collapses the paper's
//! log machinery: `op_num` still totally orders operations and a
//! `(last_normal_view, op_num)` pair still picks the freshest replica in
//! a view change, but nothing older than the newest snapshot is ever
//! needed.
//!
//! - **Normal case:** the primary assigns `op_num`s, broadcasts
//!   [`VsrMsg::Prepare`] (snapshot inline), collects
//!   [`VsrMsg::PrepareOk`] from backups and commits at a majority
//!   (including itself), announcing [`Effect::Committed`] and an eager
//!   [`VsrMsg::Commit`]. One operation is in flight at a time — the
//!   driver's commit-before-credit-return handshake waits on the commit
//!   anyway.
//! - **View change:** a backup that times out advances its view and
//!   broadcasts [`VsrMsg::StartViewChange`]; at a majority of matching
//!   view-change votes every participant sends [`VsrMsg::DoViewChange`]
//!   (with its snapshot) to the new primary — `group[view % n]` — which
//!   adopts the freshest snapshot by `(last_normal_view, op_num)`,
//!   announces [`VsrMsg::StartView`], and emits
//!   [`Effect::BecamePrimary`]. An adopted snapshot that was prepared
//!   but not yet committed is re-committed in the new view (backups
//!   `PrepareOk` it in response to `StartView`) — it may have been
//!   committed by the dead primary, so it must survive.
//! - **Recovery:** a restarted replica broadcasts [`VsrMsg::Recovery`]
//!   with a nonce; members answer [`VsrMsg::RecoveryResponse`], the
//!   current primary's response carrying the snapshot. At a majority of
//!   responses for the latest view heard, the recovering replica installs
//!   the primary's snapshot and rejoins as a backup.
//!
//! Safety rests on quorum intersection exactly as in the paper: a commit
//! quorum and any later view-change quorum share a replica, so the
//! freshest snapshot adopted by a new primary is at least as new as any
//! committed (credit-released) state.

use std::collections::{BTreeMap, BTreeSet};

use mpistream::wire::{Wire, WireError};

/// Replica status (the paper's `status` field).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Processing operations in the current view.
    Normal,
    /// Participating in a view change.
    ViewChange,
    /// Rejoining after a restart; ignores normal-case traffic.
    Recovering,
}

/// A full-state checkpoint: the snapshot that was prepared as operation
/// `op_num` (op 0 is the group's common initial state).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// The operation number this snapshot was prepared as.
    pub op_num: u64,
    /// Opaque serialized state (the driver's `Wire` frame).
    pub state: Vec<u8>,
}

mpistream::wire_struct!(Snapshot { op_num, state });

/// One DoViewChange vote's payload, kept per sender by the new primary.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Dvc {
    last_normal: u64,
    snapshot: Snapshot,
    commit_num: u64,
}

/// The replication-protocol messages, exchanged on a channel's `repl`
/// tag. `from` fields are *group indices* (positions in the channel's
/// consumer list), not world ranks — the membership is fixed at channel
/// creation, so indices are stable and smaller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VsrMsg {
    /// Primary -> backups: operation `op_num` with its full-state
    /// snapshot; piggybacks the primary's commit number.
    Prepare {
        /// The primary's view.
        view: u64,
        /// Operation number being prepared.
        op_num: u64,
        /// Highest committed operation at the primary.
        commit_num: u64,
        /// The full serialized state after this operation.
        state: Vec<u8>,
    },
    /// Backup -> primary: operation `op_num` is durably prepared here.
    PrepareOk {
        /// The backup's view.
        view: u64,
        /// The prepared operation.
        op_num: u64,
        /// Group index of the backup.
        from: usize,
    },
    /// Primary -> backups: commit notification, doubling as the idle
    /// heartbeat.
    Commit {
        /// The primary's view.
        view: u64,
        /// Highest committed operation.
        commit_num: u64,
    },
    /// A replica suspects the primary and proposes view `view`.
    StartViewChange {
        /// The proposed (new) view.
        view: u64,
        /// Group index of the proposer.
        from: usize,
    },
    /// A replica's vote-with-state for the new primary of `view`.
    DoViewChange {
        /// The new view.
        view: u64,
        /// Last view in which this replica's status was Normal.
        last_normal: u64,
        /// The replica's newest prepared snapshot.
        snapshot: Snapshot,
        /// The replica's commit number.
        commit_num: u64,
        /// Group index of the voter.
        from: usize,
    },
    /// New primary -> backups: view `view` starts with this snapshot.
    StartView {
        /// The new view.
        view: u64,
        /// The adopted snapshot (newest across the view-change quorum).
        snapshot: Snapshot,
        /// The new primary's commit number.
        commit_num: u64,
    },
    /// A restarted replica asks the group for the current state.
    Recovery {
        /// Group index of the recovering replica.
        from: usize,
        /// Nonce distinguishing this recovery from earlier incarnations.
        nonce: u64,
    },
    /// Answer to [`VsrMsg::Recovery`]; the primary's answer carries the
    /// snapshot.
    RecoveryResponse {
        /// The responder's view.
        view: u64,
        /// Echo of the recovery nonce.
        nonce: u64,
        /// Group index of the responder.
        from: usize,
        /// `Some((snapshot, commit_num))` iff the responder is the
        /// primary of `view`.
        primary: Option<(Snapshot, u64)>,
    },
    /// Primary -> backups: the replicated stream is complete; stop.
    Shutdown {
        /// The primary's view.
        view: u64,
    },
}

impl Wire for VsrMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            VsrMsg::Prepare { view, op_num, commit_num, state } => {
                out.push(0);
                view.encode(out);
                op_num.encode(out);
                commit_num.encode(out);
                state.encode(out);
            }
            VsrMsg::PrepareOk { view, op_num, from } => {
                out.push(1);
                view.encode(out);
                op_num.encode(out);
                from.encode(out);
            }
            VsrMsg::Commit { view, commit_num } => {
                out.push(2);
                view.encode(out);
                commit_num.encode(out);
            }
            VsrMsg::StartViewChange { view, from } => {
                out.push(3);
                view.encode(out);
                from.encode(out);
            }
            VsrMsg::DoViewChange { view, last_normal, snapshot, commit_num, from } => {
                out.push(4);
                view.encode(out);
                last_normal.encode(out);
                snapshot.encode(out);
                commit_num.encode(out);
                from.encode(out);
            }
            VsrMsg::StartView { view, snapshot, commit_num } => {
                out.push(5);
                view.encode(out);
                snapshot.encode(out);
                commit_num.encode(out);
            }
            VsrMsg::Recovery { from, nonce } => {
                out.push(6);
                from.encode(out);
                nonce.encode(out);
            }
            VsrMsg::RecoveryResponse { view, nonce, from, primary } => {
                out.push(7);
                view.encode(out);
                nonce.encode(out);
                from.encode(out);
                primary.encode(out);
            }
            VsrMsg::Shutdown { view } => {
                out.push(8);
                view.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(VsrMsg::Prepare {
                view: u64::decode(input)?,
                op_num: u64::decode(input)?,
                commit_num: u64::decode(input)?,
                state: Vec::decode(input)?,
            }),
            1 => Ok(VsrMsg::PrepareOk {
                view: u64::decode(input)?,
                op_num: u64::decode(input)?,
                from: usize::decode(input)?,
            }),
            2 => Ok(VsrMsg::Commit { view: u64::decode(input)?, commit_num: u64::decode(input)? }),
            3 => Ok(VsrMsg::StartViewChange {
                view: u64::decode(input)?,
                from: usize::decode(input)?,
            }),
            4 => Ok(VsrMsg::DoViewChange {
                view: u64::decode(input)?,
                last_normal: u64::decode(input)?,
                snapshot: Snapshot::decode(input)?,
                commit_num: u64::decode(input)?,
                from: usize::decode(input)?,
            }),
            5 => Ok(VsrMsg::StartView {
                view: u64::decode(input)?,
                snapshot: Snapshot::decode(input)?,
                commit_num: u64::decode(input)?,
            }),
            6 => Ok(VsrMsg::Recovery { from: usize::decode(input)?, nonce: u64::decode(input)? }),
            7 => Ok(VsrMsg::RecoveryResponse {
                view: u64::decode(input)?,
                nonce: u64::decode(input)?,
                from: usize::decode(input)?,
                primary: Option::decode(input)?,
            }),
            8 => Ok(VsrMsg::Shutdown { view: u64::decode(input)? }),
            got => Err(WireError::BadDiscriminant { got }),
        }
    }
}

/// What the driver must do after feeding the core an event. Sends come
/// first in the returned vector, milestones after.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Send `msg` to group index `to`.
    Send {
        /// Destination group index.
        to: usize,
        /// The message.
        msg: VsrMsg,
    },
    /// Send `msg` to every *other* group member.
    Broadcast {
        /// The message.
        msg: VsrMsg,
    },
    /// Operation `op_num` is committed: its snapshot is durable on a
    /// majority. The driver may now externalize it (release credits,
    /// acknowledge terms).
    Committed {
        /// The committed operation.
        op_num: u64,
    },
    /// This replica just became the primary of `view` (view change
    /// completed here). The driver restores the adopted snapshot and
    /// takes over the stream.
    BecamePrimary {
        /// The new view.
        view: u64,
    },
    /// A snapshot was installed wholesale (StartView / recovery /
    /// state-transfer-by-Prepare): the driver's copy of the state is
    /// stale and must be re-read from [`VsrCore::prepared_state`].
    InstalledState,
    /// The primary declared the stream complete; a backup driver returns.
    Finished,
}

/// One replica's protocol state. See the [module docs](self) for the
/// protocol; `crate::consumer` for the transport-facing driver.
#[derive(Clone, Debug)]
pub struct VsrCore {
    me: usize,
    n: usize,
    status: Status,
    view: u64,
    /// Last view in which this replica's status was Normal.
    last_normal: u64,
    /// Newest prepared snapshot (`prepared.op_num` is the classic
    /// `op_num` field).
    prepared: Snapshot,
    /// Newest committed snapshot (`committed.op_num` is `commit_num`).
    committed: Snapshot,
    /// PrepareOk votes for `prepared.op_num` (primary only).
    ok_from: BTreeSet<usize>,
    /// StartViewChange votes for `view` (during a view change).
    svc_from: BTreeSet<usize>,
    /// Whether this replica already cast its DoViewChange for `view`.
    dvc_sent: bool,
    /// DoViewChange votes for `view` (new primary only).
    dvc: BTreeMap<usize, Dvc>,
    /// Nonce of the in-flight recovery (Recovering only).
    recovery_nonce: u64,
    /// Recovery responses seen: group index -> responder's view.
    recovery_votes: BTreeMap<usize, u64>,
    /// Freshest primary payload among recovery responses.
    recovery_best: Option<(u64, Snapshot, u64)>,
}

impl VsrCore {
    /// A replica at group index `me` of an `n`-member group, starting in
    /// view 0 with the group's common initial state as committed
    /// operation 0. Every member must pass an identical `initial` frame.
    pub fn new(me: usize, n: usize, initial: Vec<u8>) -> VsrCore {
        assert!(n >= 1 && me < n, "replica index {me} out of a group of {n}");
        let snap = Snapshot { op_num: 0, state: initial };
        VsrCore {
            me,
            n,
            status: Status::Normal,
            view: 0,
            last_normal: 0,
            prepared: snap.clone(),
            committed: snap,
            ok_from: BTreeSet::new(),
            svc_from: BTreeSet::new(),
            dvc_sent: false,
            dvc: BTreeMap::new(),
            recovery_nonce: 0,
            recovery_votes: BTreeMap::new(),
            recovery_best: None,
        }
    }

    /// Majority quorum size (counting this replica).
    pub fn quorum(&self) -> usize {
        self.n / 2 + 1
    }

    /// Group index of the primary of `view`.
    pub fn primary_of(&self, view: u64) -> usize {
        (view % self.n as u64) as usize
    }

    /// Whether this replica is the current, functioning primary.
    pub fn is_primary(&self) -> bool {
        self.status == Status::Normal && self.primary_of(self.view) == self.me
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Current status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Newest prepared operation number.
    pub fn op_num(&self) -> u64 {
        self.prepared.op_num
    }

    /// Newest committed operation number.
    pub fn commit_num(&self) -> u64 {
        self.committed.op_num
    }

    /// The newest prepared snapshot's state frame.
    pub fn prepared_state(&self) -> &[u8] {
        &self.prepared.state
    }

    /// The newest committed snapshot's state frame.
    pub fn committed_state(&self) -> &[u8] {
        &self.committed.state
    }

    /// Whether the newest prepared operation has committed (nothing in
    /// flight).
    pub fn idle(&self) -> bool {
        self.prepared.op_num == self.committed.op_num
    }

    /// Primary: prepare `state` as the next operation. Requires an idle
    /// core (the one-in-flight discipline of the commit-before-credit
    /// handshake). Returns the broadcast — and, in a single-member group,
    /// the immediate commit.
    pub fn on_local_op(&mut self, state: Vec<u8>) -> Vec<Effect> {
        assert!(self.is_primary(), "on_local_op on a non-primary");
        assert!(self.idle(), "on_local_op with an operation in flight");
        self.prepared = Snapshot { op_num: self.committed.op_num + 1, state };
        self.ok_from = BTreeSet::from([self.me]);
        let mut effects = vec![Effect::Broadcast {
            msg: VsrMsg::Prepare {
                view: self.view,
                op_num: self.prepared.op_num,
                commit_num: self.committed.op_num,
                state: self.prepared.state.clone(),
            },
        }];
        self.try_commit(&mut effects);
        effects
    }

    /// Feed one incoming message (`from` is the sender's group index as
    /// carried in the message where present; pass the transport's notion
    /// otherwise).
    pub fn on_message(&mut self, msg: VsrMsg) -> Vec<Effect> {
        let mut effects = Vec::new();
        match msg {
            VsrMsg::Prepare { view, op_num, commit_num, state } => {
                if view < self.view || self.status == Status::Recovering {
                    return effects;
                }
                if view > self.view || self.status != Status::Normal {
                    // The primary of `view` had quorum, and its Prepare
                    // carries full state: adopt the view directly (the
                    // missed StartView is subsumed by the snapshot).
                    self.enter_view(view);
                    // An op prepared under the old view but never
                    // committed is void here: this replica sat outside
                    // the view-change quorum, so the new primary may have
                    // assigned the *same op_num to different state*.
                    // Keeping it would skip the install below on an equal
                    // op_num while still PrepareOk-ing — acknowledging,
                    // and on the next Commit adopting, state this replica
                    // never held. The committed snapshot is the only safe
                    // base to compare the incoming op against.
                    self.prepared = self.committed.clone();
                }
                if op_num > self.prepared.op_num {
                    self.promote_if_covered(commit_num);
                    self.prepared = Snapshot { op_num, state };
                    effects.push(Effect::InstalledState);
                }
                self.promote_if_covered(commit_num);
                effects.push(Effect::Send {
                    to: self.primary_of(self.view),
                    msg: VsrMsg::PrepareOk { view: self.view, op_num, from: self.me },
                });
            }
            VsrMsg::PrepareOk { view, op_num, from } => {
                if view != self.view || !self.is_primary() || op_num != self.prepared.op_num {
                    return effects;
                }
                self.ok_from.insert(from);
                self.try_commit(&mut effects);
            }
            VsrMsg::Commit { view, commit_num } => {
                if view != self.view || self.status != Status::Normal {
                    return effects;
                }
                let before = self.committed.op_num;
                self.promote_if_covered(commit_num);
                if self.committed.op_num > before {
                    effects.push(Effect::Committed { op_num: self.committed.op_num });
                }
            }
            VsrMsg::StartViewChange { view, from } => {
                if view < self.view || self.status == Status::Recovering {
                    return effects;
                }
                if view == self.view && self.status == Status::Normal {
                    // This view change already completed here (StartView
                    // arrived, or a quorum-backed Prepare subsumed it): a
                    // straggler's vote for it is stale. Restarting would
                    // re-broadcast the vote and ping-pong the group
                    // between Normal and ViewChange forever.
                    return effects;
                }
                if view > self.view {
                    self.start_view_change(view, &mut effects);
                }
                self.svc_from.insert(from);
                self.maybe_do_view_change(&mut effects);
            }
            VsrMsg::DoViewChange { view, last_normal, snapshot, commit_num, from } => {
                if view < self.view || self.status == Status::Recovering {
                    return effects;
                }
                if view > self.view {
                    self.start_view_change(view, &mut effects);
                }
                if self.primary_of(view) != self.me {
                    return effects;
                }
                self.dvc.insert(from, Dvc { last_normal, snapshot, commit_num });
                self.maybe_become_primary(&mut effects);
            }
            VsrMsg::StartView { view, snapshot, commit_num } => {
                if view < self.view
                    || (view == self.view && self.status == Status::Normal)
                    || self.status == Status::Recovering
                {
                    return effects;
                }
                self.enter_view(view);
                self.prepared = snapshot;
                self.promote_if_covered(commit_num);
                effects.push(Effect::InstalledState);
                if self.prepared.op_num > self.committed.op_num {
                    // Help the new primary re-commit the adopted
                    // operation in its new view.
                    effects.push(Effect::Send {
                        to: self.primary_of(view),
                        msg: VsrMsg::PrepareOk {
                            view,
                            op_num: self.prepared.op_num,
                            from: self.me,
                        },
                    });
                }
            }
            VsrMsg::Recovery { from, nonce } => {
                if self.status != Status::Normal {
                    return effects;
                }
                let primary = if self.is_primary() {
                    Some((self.prepared.clone(), self.committed.op_num))
                } else {
                    None
                };
                effects.push(Effect::Send {
                    to: from,
                    msg: VsrMsg::RecoveryResponse {
                        view: self.view,
                        nonce,
                        from: self.me,
                        primary,
                    },
                });
            }
            VsrMsg::RecoveryResponse { view, nonce, from, primary } => {
                if self.status != Status::Recovering || nonce != self.recovery_nonce {
                    return effects;
                }
                self.recovery_votes.insert(from, view);
                if let Some((snapshot, commit_num)) = primary {
                    let fresher = self.recovery_best.as_ref().is_none_or(|&(v, ..)| view > v);
                    if fresher {
                        self.recovery_best = Some((view, snapshot, commit_num));
                    }
                }
                self.maybe_finish_recovery(&mut effects);
            }
            VsrMsg::Shutdown { view } => {
                if view >= self.view {
                    effects.push(Effect::Finished);
                }
            }
        }
        effects
    }

    /// The driver's patience ran out (no primary traffic for the
    /// channel's replication patience): start — or escalate — a view
    /// change. A primary ignores timeouts (it heartbeats instead).
    pub fn on_timeout(&mut self) -> Vec<Effect> {
        let mut effects = Vec::new();
        if self.is_primary() || self.status == Status::Recovering {
            return effects;
        }
        let next = self.view + 1;
        self.start_view_change(next, &mut effects);
        self.maybe_do_view_change(&mut effects);
        effects
    }

    /// Begin recovering after a restart: forget volatile state, pick a
    /// fresh `nonce`, and ask the group. The driver routes the broadcast
    /// and keeps feeding responses until [`Effect::InstalledState`].
    pub fn start_recovery(&mut self, nonce: u64) -> Vec<Effect> {
        self.status = Status::Recovering;
        self.recovery_nonce = nonce;
        self.recovery_votes.clear();
        self.recovery_best = None;
        vec![Effect::Broadcast { msg: VsrMsg::Recovery { from: self.me, nonce } }]
    }

    /// Commit when a majority (including self) has prepared the in-flight
    /// operation.
    fn try_commit(&mut self, effects: &mut Vec<Effect>) {
        if self.prepared.op_num > self.committed.op_num && self.ok_from.len() >= self.quorum() {
            self.committed = self.prepared.clone();
            effects.push(Effect::Broadcast {
                msg: VsrMsg::Commit { view: self.view, commit_num: self.committed.op_num },
            });
            effects.push(Effect::Committed { op_num: self.committed.op_num });
        }
    }

    /// Promote the prepared snapshot to committed when `commit_num`
    /// covers it. (With one operation in flight, `commit_num` is always
    /// `prepared.op_num` or `prepared.op_num - 1`.)
    fn promote_if_covered(&mut self, commit_num: u64) {
        if commit_num >= self.prepared.op_num && self.prepared.op_num > self.committed.op_num {
            self.committed = self.prepared.clone();
        }
    }

    /// Move to view `view` in ViewChange status, voting for it.
    fn start_view_change(&mut self, view: u64, effects: &mut Vec<Effect>) {
        debug_assert!(view > self.view || self.status != Status::ViewChange);
        if self.status == Status::Normal {
            self.last_normal = self.view;
        }
        self.view = view;
        self.status = Status::ViewChange;
        self.svc_from = BTreeSet::from([self.me]);
        self.dvc_sent = false;
        self.dvc.clear();
        effects.push(Effect::Broadcast { msg: VsrMsg::StartViewChange { view, from: self.me } });
    }

    /// Cast the DoViewChange vote once a majority proposes this view.
    fn maybe_do_view_change(&mut self, effects: &mut Vec<Effect>) {
        if self.status != Status::ViewChange || self.dvc_sent || self.svc_from.len() < self.quorum()
        {
            return;
        }
        self.dvc_sent = true;
        let dvc = Dvc {
            last_normal: self.last_normal,
            snapshot: self.prepared.clone(),
            commit_num: self.committed.op_num,
        };
        if self.primary_of(self.view) == self.me {
            self.dvc.insert(self.me, dvc);
            self.maybe_become_primary(effects);
        } else {
            effects.push(Effect::Send {
                to: self.primary_of(self.view),
                msg: VsrMsg::DoViewChange {
                    view: self.view,
                    last_normal: dvc.last_normal,
                    snapshot: dvc.snapshot,
                    commit_num: dvc.commit_num,
                    from: self.me,
                },
            });
        }
    }

    /// Complete the view change once a majority has cast DoViewChange
    /// votes here: adopt the freshest snapshot, announce StartView, and
    /// hand the stream to the driver.
    fn maybe_become_primary(&mut self, effects: &mut Vec<Effect>) {
        if self.status != Status::ViewChange || self.dvc.len() < self.quorum() {
            return;
        }
        let best = self
            .dvc
            .values()
            .max_by_key(|d| (d.last_normal, d.snapshot.op_num))
            .expect("quorum is non-empty");
        let commit_num =
            self.dvc.values().map(|d| d.commit_num).max().expect("quorum is non-empty");
        self.prepared = best.snapshot.clone();
        let view = self.view;
        self.enter_view(view);
        self.promote_if_covered(commit_num);
        effects.push(Effect::Broadcast {
            msg: VsrMsg::StartView {
                view: self.view,
                snapshot: self.prepared.clone(),
                commit_num: self.committed.op_num,
            },
        });
        // The adopted snapshot may be prepared-but-uncommitted (and may
        // have been committed by the dead primary — it must survive):
        // re-commit it in this view. Backups PrepareOk in response to
        // StartView; count our own vote now.
        self.ok_from = BTreeSet::from([self.me]);
        self.try_commit(effects);
        effects.push(Effect::BecamePrimary { view: self.view });
    }

    /// Install the freshest primary snapshot once a majority answered
    /// this recovery round and the freshest view's primary is among them.
    fn maybe_finish_recovery(&mut self, effects: &mut Vec<Effect>) {
        if self.recovery_votes.len() < self.quorum() {
            return;
        }
        let max_view = *self.recovery_votes.values().max().expect("quorum is non-empty");
        let Some((view, snapshot, commit_num)) = self.recovery_best.clone() else {
            return; // no primary answered yet: keep waiting
        };
        if view < max_view {
            return; // a fresher view exists; wait for its primary
        }
        self.enter_view(view);
        self.prepared = snapshot;
        self.promote_if_covered(commit_num);
        // Anything above the commit number is re-driven by the primary.
        self.prepared = self.committed.clone();
        effects.push(Effect::InstalledState);
    }

    /// Enter `view` in Normal status, clearing per-view vote state.
    fn enter_view(&mut self, view: u64) {
        self.view = view;
        self.last_normal = view;
        self.status = Status::Normal;
        self.svc_from.clear();
        self.dvc_sent = false;
        self.dvc.clear();
        self.ok_from.clear();
        self.recovery_votes.clear();
        self.recovery_best = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deliver `effects` from `from` into a set of cores, returning
    /// follow-up effects per recipient. Send/Broadcast only.
    fn route(cores: &mut [VsrCore], from: usize, effects: Vec<Effect>) -> Vec<(usize, Effect)> {
        let mut out = Vec::new();
        for e in effects {
            match e {
                Effect::Send { to, msg } => {
                    for f in cores[to].on_message(msg.clone()) {
                        out.push((to, f));
                    }
                }
                Effect::Broadcast { msg } => {
                    for (to, core) in cores.iter_mut().enumerate() {
                        if to == from {
                            continue;
                        }
                        for f in core.on_message(msg.clone()) {
                            out.push((to, f));
                        }
                    }
                }
                other => out.push((from, other)),
            }
        }
        out
    }

    /// Run effects to a fixed point, collecting milestones.
    fn settle(cores: &mut [VsrCore], from: usize, effects: Vec<Effect>) -> Vec<(usize, Effect)> {
        let mut milestones = Vec::new();
        let mut frontier = vec![(from, effects)];
        while let Some((src, effs)) = frontier.pop() {
            for (who, e) in route(cores, src, effs) {
                match e {
                    Effect::Send { .. } | Effect::Broadcast { .. } => {
                        frontier.push((who, vec![e]));
                    }
                    other => milestones.push((who, other)),
                }
            }
        }
        milestones
    }

    fn group(n: usize) -> Vec<VsrCore> {
        (0..n).map(|i| VsrCore::new(i, n, vec![0xAA])).collect()
    }

    #[test]
    fn normal_case_commits_at_majority() {
        let mut cores = group(3);
        let effects = cores[0].on_local_op(vec![1, 2, 3]);
        let milestones = settle(&mut cores, 0, effects);
        assert!(milestones.contains(&(0, Effect::Committed { op_num: 1 })));
        assert_eq!(cores[0].commit_num(), 1);
        assert_eq!(cores[0].committed_state(), &[1, 2, 3]);
        // Backups prepared it; commit reaches them via the eager Commit.
        for c in &cores[1..] {
            assert_eq!(c.op_num(), 1);
            assert_eq!(c.commit_num(), 1, "eager commit broadcast reaches backups");
        }
    }

    #[test]
    fn single_member_group_commits_immediately() {
        let mut core = VsrCore::new(0, 1, vec![]);
        let effects = core.on_local_op(vec![9]);
        assert!(effects.iter().any(|e| matches!(e, Effect::Committed { op_num: 1 })));
        assert_eq!(core.commit_num(), 1);
    }

    #[test]
    fn view_change_adopts_freshest_snapshot_and_recommits() {
        let mut cores = group(3);
        // Commit op 1 everywhere, then prepare op 2 on backup 1 only
        // (primary "dies" before committing it — but it MAY have
        // committed, so the new primary must adopt and re-commit it).
        let effects = cores[0].on_local_op(vec![1]);
        settle(&mut cores, 0, effects);
        let op2 = VsrMsg::Prepare { view: 0, op_num: 2, commit_num: 1, state: vec![2] };
        cores[1].on_message(op2); // PrepareOk to dead primary: dropped
        assert_eq!(cores[1].op_num(), 2);
        assert_eq!(cores[1].commit_num(), 1);
        // Backup 2 times out; view change among {1, 2}; primary of view 1
        // is replica 1.
        let effects = cores[2].on_timeout();
        // Deliver only to replica 1 (replica 0 is dead).
        let mut milestones = Vec::new();
        let mut frontier = vec![(2usize, effects)];
        while let Some((src, effs)) = frontier.pop() {
            for e in effs {
                match e {
                    Effect::Send { to, msg } if to != 0 => {
                        let f = cores[to].on_message(msg);
                        frontier.push((to, f));
                    }
                    Effect::Broadcast { msg } => {
                        for (to, core) in cores.iter_mut().enumerate() {
                            if to == src || to == 0 {
                                continue;
                            }
                            let f = core.on_message(msg.clone());
                            frontier.push((to, f));
                        }
                    }
                    Effect::Send { .. } => {} // to the dead primary
                    other => milestones.push((src, other)),
                }
            }
        }
        assert!(
            milestones.contains(&(1, Effect::BecamePrimary { view: 1 })),
            "replica 1 must win view 1: {milestones:?}"
        );
        assert!(cores[1].is_primary());
        // The uncommitted op 2 was adopted AND re-committed in view 1.
        assert_eq!(cores[1].op_num(), 2);
        assert_eq!(cores[1].commit_num(), 2, "adopted snapshot must re-commit: {milestones:?}");
        assert_eq!(cores[1].committed_state(), &[2]);
        assert_eq!(cores[2].view(), 1);
        assert_eq!(cores[2].op_num(), 2, "StartView installs the adopted snapshot");
    }

    #[test]
    fn stale_view_messages_are_ignored() {
        let mut cores = group(3);
        let effects = cores[2].on_timeout(); // moves to view 1
        settle(&mut cores, 2, effects);
        // A stale Prepare from the deposed view-0 primary.
        let effects = cores[2].on_message(VsrMsg::Prepare {
            view: 0,
            op_num: 5,
            commit_num: 0,
            state: vec![5],
        });
        assert!(effects.is_empty());
        assert_ne!(cores[2].op_num(), 5);
    }

    #[test]
    fn backup_adopts_higher_view_from_prepare() {
        let mut cores = group(3);
        // Replica 2 never hears the view change; a Prepare from the view-1
        // primary carries everything needed to follow.
        let effects = cores[2].on_message(VsrMsg::Prepare {
            view: 1,
            op_num: 3,
            commit_num: 2,
            state: vec![7],
        });
        assert_eq!(cores[2].view(), 1);
        assert_eq!(cores[2].op_num(), 3);
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::Send { to: 1, msg: VsrMsg::PrepareOk { view: 1, op_num: 3, .. } }
        )));
    }

    /// The divergence scenario of op_num reuse across views (needs n>=5
    /// for a view-change quorum that excludes both the dead primary and
    /// a lagging backup): backup 3 prepared op 1 = A under view 0, the
    /// primary died uncommitted, and the view-1 quorum {1, 2, 4} never
    /// saw A — so the new primary reuses op 1 for different state B. The
    /// lagging backup must discard A and install B; acknowledging op 1
    /// while still holding A would commit divergent state on the next
    /// Commit message.
    #[test]
    fn higher_view_prepare_discards_stale_prepared_op() {
        let mut cores = group(5);
        cores[3].on_message(VsrMsg::Prepare {
            view: 0,
            op_num: 1,
            commit_num: 0,
            state: vec![0xA],
        });
        assert_eq!(cores[3].op_num(), 1);
        assert_eq!(cores[3].prepared_state(), &[0xA]);
        // New primary of view 1 prepares a *different* op 1 = B.
        let effects = cores[3].on_message(VsrMsg::Prepare {
            view: 1,
            op_num: 1,
            commit_num: 0,
            state: vec![0xB],
        });
        assert_eq!(cores[3].view(), 1);
        assert_eq!(cores[3].prepared_state(), &[0xB], "stale view-0 op 1 must be discarded");
        assert!(effects.contains(&Effect::InstalledState), "B must actually install: {effects:?}");
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::Send { to: 1, msg: VsrMsg::PrepareOk { view: 1, op_num: 1, .. } }
        )));
        // The commit that follows must commit B, not A.
        cores[3].on_message(VsrMsg::Commit { view: 1, commit_num: 1 });
        assert_eq!(cores[3].commit_num(), 1);
        assert_eq!(cores[3].committed_state(), &[0xB]);
    }

    #[test]
    fn recovery_installs_primary_snapshot() {
        let mut cores = group(3);
        let effects = cores[0].on_local_op(vec![4]);
        settle(&mut cores, 0, effects);
        // Replica 2 restarts from nothing.
        cores[2] = VsrCore::new(2, 3, vec![0xAA]);
        let effects = cores[2].start_recovery(77);
        let milestones = settle(&mut cores, 2, effects);
        assert!(milestones.contains(&(2, Effect::InstalledState)));
        assert_eq!(cores[2].status(), Status::Normal);
        assert_eq!(cores[2].commit_num(), 1);
        assert_eq!(cores[2].committed_state(), &[4]);
    }

    #[test]
    fn shutdown_finishes_backups() {
        let mut cores = group(3);
        let effects = cores[1].on_message(VsrMsg::Shutdown { view: 0 });
        assert_eq!(effects, vec![Effect::Finished]);
        // Stale shutdown from a deposed view is ignored.
        let effects = cores[2].on_timeout();
        settle(&mut cores, 2, effects);
        // (view changed past 0 on core 2 — re-send old shutdown)
        assert!(cores[2].view() > 0);
        let effects = cores[2].on_message(VsrMsg::Shutdown { view: 0 });
        assert!(effects.is_empty());
    }

    #[test]
    fn primary_steps_down_on_higher_view() {
        let mut cores = group(3);
        assert!(cores[0].is_primary());
        cores[0].on_message(VsrMsg::StartViewChange { view: 1, from: 2 });
        assert!(!cores[0].is_primary());
        assert_eq!(cores[0].status(), Status::ViewChange);
    }

    #[test]
    fn commit_requires_quorum_not_just_one_ok() {
        let mut cores = group(5); // quorum 3: self + 2 oks
        let effects = cores[0].on_local_op(vec![1]);
        // Withhold all backup responses.
        drop(effects);
        assert_eq!(cores[0].commit_num(), 0);
        cores[0].on_message(VsrMsg::PrepareOk { view: 0, op_num: 1, from: 1 });
        assert_eq!(cores[0].commit_num(), 0, "2 of 5 is not a majority");
        let effects = cores[0].on_message(VsrMsg::PrepareOk { view: 0, op_num: 1, from: 2 });
        assert_eq!(cores[0].commit_num(), 1);
        assert!(effects.iter().any(|e| matches!(e, Effect::Committed { op_num: 1 })));
        // Duplicate PrepareOks change nothing.
        let effects = cores[0].on_message(VsrMsg::PrepareOk { view: 0, op_num: 1, from: 1 });
        assert!(effects.is_empty());
    }
}

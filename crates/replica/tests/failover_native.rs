//! Native-backend failover: OS threads cannot be killed, so the initial
//! primary "dies" voluntarily — its fold returns [`ControlFlow::Break`],
//! making `run_replicated` stop abruptly without a checkpoint, credits
//! or a goodbye. The standbys must detect the silence on the wall clock
//! and the successor must replay to the exact committed cursor.

use std::ops::ControlFlow;
use std::sync::Arc;

use mpistream::transport::SimDuration;
use mpistream::{ChannelConfig, Role, RoutePolicy, StreamChannel, Transport};
use native::NativeWorld;
use parking_lot::Mutex;
use replica::{run_replicated, ReplicaOutcome, ReplicaRole, ReplicatedProducer};

#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

#[test]
fn native_voluntary_stop_fails_over_to_standby() {
    const N_PRODUCERS: usize = 2;
    const PER_PRODUCER: u64 = 200;
    let config = ChannelConfig {
        element_bytes: 256,
        aggregation: 4,
        credits: Some(32),
        route: RoutePolicy::Static,
        credit_batch: 1,
        // Wall-clock timeouts: failover patience derives to 4 * 20ms.
        failure_timeout: Some(SimDuration::from_millis(20)),
        replicas: 2,
        replication_patience: None,
    };
    type OutcomeLog = Arc<Mutex<Vec<(usize, ReplicaOutcome<u64>)>>>;
    let outcomes: OutcomeLog = Arc::new(Mutex::new(Vec::new()));
    let sent: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let world = NativeWorld::new(N_PRODUCERS + 3);
    world.run(|rank| {
        let comm = rank.world_group();
        let me = rank.world_rank();
        let role = if me < N_PRODUCERS { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(rank, &comm, role, config.clone());
        match role {
            Role::Producer => {
                let mut p: ReplicatedProducer<u64> = ReplicatedProducer::new(ch);
                for i in 0..PER_PRODUCER {
                    p.push(rank, (me as u64) << 32 | i);
                }
                sent.lock().push(p.finish(rank).sent);
            }
            Role::Consumer => {
                let initial_primary = me == N_PRODUCERS;
                let mut folded = 0u64;
                let outcome = run_replicated::<u64, u64, _, _>(rank, &ch, 0, |_, acc, v| {
                    folded += 1;
                    if initial_primary && folded == 120 {
                        // Voluntary mid-stream stop: no checkpoint, no
                        // credits — the standbys see only silence.
                        return ControlFlow::Break(());
                    }
                    *acc = acc.wrapping_add(mix64(v));
                    ControlFlow::Continue(())
                });
                outcomes.lock().push((me, outcome));
            }
            Role::Bystander => unreachable!(),
        }
    });
    let mut outcomes = outcomes.lock().clone();
    outcomes.sort_by_key(|&(r, _)| r);
    assert_eq!(outcomes.len(), 3);
    let expect: u64 = (0..N_PRODUCERS as u64)
        .flat_map(|p| (0..PER_PRODUCER).map(move |i| mix64(p << 32 | i)))
        .fold(0u64, |a, b| a.wrapping_add(b));
    let (_, dead) = &outcomes[0];
    assert_eq!(dead.role, ReplicaRole::Died);
    let (_, successor) = &outcomes[1];
    assert_eq!(successor.role, ReplicaRole::Primary);
    assert_eq!(successor.view, 1);
    assert_eq!(
        successor.state, expect,
        "exactly-once violated on the native backend after voluntary stop"
    );
    let (_, standby) = &outcomes[2];
    assert_eq!(standby.role, ReplicaRole::Standby);
    assert_eq!(standby.state, expect);
    assert_eq!(sent.lock().iter().sum::<u64>(), N_PRODUCERS as u64 * PER_PRODUCER);
}

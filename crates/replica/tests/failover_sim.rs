//! Simulator integration tests of replicated consumer failover: a
//! replica group drains a stream while the fault plan kills ranks at
//! exact element cursors, and the surviving state must fold every
//! injected element exactly once.
//!
//! These runs deliberately do *not* enable the happens-before sanitizer:
//! its per-link credit ledger assumes the rank that received a batch is
//! the rank that acknowledges it, which a takeover violates by design
//! (the successor acknowledges elements its predecessor received).

use std::ops::ControlFlow;
use std::sync::Arc;

use mpisim::{FaultPlan, MachineConfig, NoiseModel, SimDuration, SimTime, World};
use mpistream::{ChannelConfig, Role, RoutePolicy, StreamChannel};
use parking_lot::Mutex;
use replica::{run_replicated, ProducerFinish, ReplicaOutcome, ReplicaRole, ReplicatedProducer};

const PER_ELEM_SECS: f64 = 2e-6;

#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// Order-insensitive checksum of the full expected payload multiset.
fn expected_checksum(n_producers: usize, per_producer: u64) -> u64 {
    let mut sum = 0u64;
    for p in 0..n_producers as u64 {
        for i in 0..per_producer {
            sum = sum.wrapping_add(mix64(p << 32 | i));
        }
    }
    sum
}

fn config(replicas: usize) -> ChannelConfig {
    ChannelConfig {
        element_bytes: 512,
        aggregation: 4,
        credits: Some(32),
        route: RoutePolicy::Static,
        credit_batch: 1,
        failure_timeout: Some(SimDuration::from_millis(3)),
        replicas,
        // Default derivation: 4 * failure_timeout = 12ms patience.
        replication_patience: None,
    }
}

/// Run `n_producers + 3` ranks: producers stream `per_producer` elements
/// each into a 3-member replica group folding the mix64 checksum.
/// Returns `(killed ranks, consumer outcomes, producer reports)`.
#[allow(clippy::type_complexity)]
fn run(
    n_producers: usize,
    per_producer: u64,
    plan: FaultPlan,
) -> (Vec<usize>, Vec<(usize, ReplicaOutcome<u64>)>, Vec<(usize, ProducerFinish)>) {
    let world = World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
        .with_seed(7)
        .with_fault_plan(plan);
    let nprocs = n_producers + 3;
    let outcomes: Arc<Mutex<Vec<(usize, ReplicaOutcome<u64>)>>> = Arc::new(Mutex::new(Vec::new()));
    let finishes: Arc<Mutex<Vec<(usize, ProducerFinish)>>> = Arc::new(Mutex::new(Vec::new()));
    let (oc, fin) = (outcomes.clone(), finishes.clone());
    let out = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let me = rank.world_rank();
        let role = if me < n_producers { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(rank, &comm, role, config(2));
        match role {
            Role::Producer => {
                let mut p: ReplicatedProducer<u64> = ReplicatedProducer::new(ch);
                for i in 0..per_producer {
                    rank.compute_exact(PER_ELEM_SECS);
                    p.push(rank, (me as u64) << 32 | i);
                }
                // Finish *before* taking the log lock: the receiver of
                // `lock().push(...)` is evaluated first, and holding a
                // host-side mutex while blocked inside the simulator
                // deadlocks the world (the kernel waits on a rank that is
                // futex-blocked outside its knowledge).
                let f = p.finish(rank);
                fin.lock().push((me, f));
            }
            Role::Consumer => {
                let mut folded = 0u64;
                let outcome = run_replicated::<u64, u64, _, _>(rank, &ch, 0, |r, acc, v| {
                    folded += 1;
                    if r.fault_plan().element_kill(r.world_rank()) == Some(folded) {
                        r.exit_killed();
                    }
                    *acc = acc.wrapping_add(mix64(v));
                    ControlFlow::Continue(())
                });
                oc.lock().push((me, outcome));
            }
            Role::Bystander => unreachable!(),
        }
    });
    let mut killed = out.sim.killed.clone();
    killed.sort_unstable();
    let mut outcomes = outcomes.lock().clone();
    outcomes.sort_by_key(|&(r, _)| r);
    let mut finishes = finishes.lock().clone();
    finishes.sort_by_key(|&(r, _)| r);
    (killed, outcomes, finishes)
}

#[test]
fn replicated_run_completes_without_faults() {
    let (n_producers, per_producer) = (2, 120);
    let (killed, outcomes, finishes) = run(n_producers, per_producer, FaultPlan::new(1));
    assert_eq!(killed, Vec::<usize>::new());
    assert_eq!(outcomes.len(), 3);
    let expect = expected_checksum(n_producers, per_producer);
    // consumers[0] (rank 2) finishes as the view-0 primary; the standbys
    // end with the identical committed state.
    let (r0, primary) = &outcomes[0];
    assert_eq!(*r0, n_producers);
    assert_eq!(primary.role, ReplicaRole::Primary);
    assert_eq!(primary.view, 0);
    assert_eq!(primary.state, expect);
    assert!(primary.commits > 0, "the primary must have replicated checkpoints");
    for (_, o) in &outcomes[1..] {
        assert_eq!(o.role, ReplicaRole::Standby);
        assert_eq!(o.state, expect, "standby state must match the primary's");
        assert_eq!(o.checkpoint, primary.checkpoint);
    }
    // The committed cursors account for every element, per producer.
    for p in 0..n_producers as u64 {
        assert!(primary.checkpoint.cursors.contains(&(p, per_producer)));
        assert!(primary.checkpoint.claims.contains(&(p, per_producer)));
    }
    for (p, f) in &finishes {
        assert_eq!(f.sent, per_producer, "producer {p}");
        assert_eq!(f.resent, 0, "no takeover, nothing to replay");
        assert_eq!(f.takeovers, 0);
        assert_eq!(f.view, 0);
    }
}

#[test]
fn primary_death_fails_over_with_exactly_once_replay() {
    let (n_producers, per_producer) = (3, 150);
    let primary_rank = n_producers; // consumers[0]
                                    // Killed while folding its 97th element: checkpoints below the kill
                                    // are committed, the tail is mid-flight — the worst spot.
    let plan = FaultPlan::new(2).kill_at_element(primary_rank, 97);
    let (killed, outcomes, finishes) = run(n_producers, per_producer, plan);
    assert_eq!(killed, vec![primary_rank]);
    assert_eq!(outcomes.len(), 2, "the killed primary reports nothing");
    let expect = expected_checksum(n_producers, per_producer);
    // consumers[1] is the primary of view 1.
    let (r1, successor) = &outcomes[0];
    assert_eq!(*r1, primary_rank + 1);
    assert_eq!(successor.role, ReplicaRole::Primary);
    assert_eq!(successor.view, 1);
    assert_eq!(
        successor.state, expect,
        "exactly-once violated: the surviving state's checksum diverges"
    );
    assert!(successor.commits > 0, "the successor must commit the replayed tail");
    let (r2, standby) = &outcomes[1];
    assert_eq!(*r2, primary_rank + 2);
    assert_eq!(standby.role, ReplicaRole::Standby);
    assert_eq!(standby.state, expect);
    assert_eq!(standby.checkpoint, successor.checkpoint);
    for p in 0..n_producers as u64 {
        assert!(successor.checkpoint.cursors.contains(&(p, per_producer)));
    }
    // Every producer finished its flow in the new view.
    let mut replayed = 0u64;
    for (p, f) in &finishes {
        assert_eq!(f.sent, per_producer, "producer {p}");
        assert_eq!(f.view, 1, "producer {p} must have followed the takeover");
        replayed += f.resent;
    }
    // The kill lands mid-stream with a 32-element credit window, so some
    // uncommitted suffix must have been replayed.
    assert!(replayed > 0, "a mid-stream kill must leave an uncommitted tail to replay");
}

#[test]
fn standby_death_does_not_stall_the_stream() {
    let (n_producers, per_producer) = (2, 100);
    let standby_rank = n_producers + 2; // consumers[2]
                                        // A standby dying must not stall the primary: quorum is still 2 of 3.
    let plan = FaultPlan::new(3).kill(standby_rank, SimTime(200_000));
    let (killed, outcomes, finishes) = run(n_producers, per_producer, plan);
    assert_eq!(killed, vec![standby_rank]);
    let expect = expected_checksum(n_producers, per_producer);
    let (r0, primary) = &outcomes[0];
    assert_eq!(*r0, n_producers);
    assert_eq!(primary.role, ReplicaRole::Primary);
    assert_eq!(primary.view, 0, "a standby death must not force a view change");
    assert_eq!(primary.state, expect);
    for (_, f) in &finishes {
        assert_eq!(f.sent, per_producer);
        assert_eq!(f.takeovers, 0);
    }
}

/// The replication hot path reports itself to the profiler: every
/// quorum round-trip lands as a `repl-commit` span, and the per-channel
/// counters record commits, checkpoint bytes and prepare→commit
/// latency. On the simulator the extra `now()` reads are pure, so
/// profiling perturbs nothing.
#[test]
fn replication_reports_commit_latency_to_the_profiler() {
    use streamprof::{Clock, ProfSink, Profiled};
    let sink = ProfSink::new(Clock::Virtual);
    let (n_producers, per_producer) = (2usize, 60u64);
    let world = World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
        .with_seed(11);
    let s = sink.clone();
    world.run_expect(n_producers + 3, move |rank| {
        let comm = rank.comm_world();
        let me = rank.world_rank();
        let role = if me < n_producers { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(rank, &comm, role, config(2));
        match role {
            Role::Producer => {
                let mut p: ReplicatedProducer<u64> = ReplicatedProducer::new(ch);
                for i in 0..per_producer {
                    rank.compute_exact(PER_ELEM_SECS);
                    p.push(rank, (me as u64) << 32 | i);
                }
                p.finish(rank);
            }
            Role::Consumer => {
                let mut prof = Profiled::new(rank, s.clone());
                run_replicated::<u64, u64, _, _>(&mut prof, &ch, 0, |_, acc, v| {
                    *acc = acc.wrapping_add(mix64(v));
                    ControlFlow::Continue(())
                });
            }
            Role::Bystander => unreachable!(),
        }
    });
    let trace = sink.take();
    let primary_rank = n_producers;
    let m = trace
        .streams()
        .iter()
        .find(|((pid, _), _)| *pid == primary_rank)
        .map(|(_, m)| *m)
        .expect("the primary recorded stream metrics");
    assert!(m.repl_commits > 0, "every released credit batch rides on a commit");
    assert!(m.repl_bytes > 0, "checkpoint bytes must be accounted");
    assert!(m.repl_commit_latency() > 0.0, "a quorum round-trip takes simulated time");
    assert!(
        trace.spans().iter().any(|sp| sp.pid == primary_rank && sp.cat == "repl-commit"),
        "the prepare→commit window must land on the timeline as a span"
    );
}

/// A primary that is merely *slow* — not dead — is deposed by a spurious
/// view change while replay batches are still queued on its data tag.
/// With every replica stalling once, the primary role walks the whole
/// group and returns to ranks that already served: a re-elected primary
/// restores the committed checkpoint, but its queue still holds batches
/// addressed to its earlier reign, and the producers' fresh replay
/// resends that very suffix. The takeover quarantine (lifted by each
/// producer's post-announce `Mark`) must drop the stale copies so every
/// element folds into the surviving state exactly once.
#[test]
#[allow(clippy::type_complexity)]
fn deposed_alive_reelection_does_not_double_fold() {
    let (n_producers, per_producer) = (2usize, 200u64);
    // Group of 4 consumers (replicas = 3, quorum 3): one rank can stall
    // while the other three still elect, so the role can leave a rank
    // and come back without ever losing a majority.
    let world = World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
        .with_seed(13);
    let nprocs = n_producers + 4;
    // Stall for 5x the 12ms replication patience: far past the point
    // where the standbys must suspect the (live) primary.
    let stall_secs = 0.060;
    let outcomes: Arc<Mutex<Vec<(usize, ReplicaOutcome<u64>)>>> = Arc::new(Mutex::new(Vec::new()));
    let finishes: Arc<Mutex<Vec<(usize, ProducerFinish)>>> = Arc::new(Mutex::new(Vec::new()));
    let (oc, fin) = (outcomes.clone(), finishes.clone());
    let out = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let me = rank.world_rank();
        let role = if me < n_producers { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(rank, &comm, role, config(3));
        match role {
            Role::Producer => {
                let mut p: ReplicatedProducer<u64> = ReplicatedProducer::new(ch);
                for i in 0..per_producer {
                    rank.compute_exact(PER_ELEM_SECS);
                    p.push(rank, (me as u64) << 32 | i);
                }
                let f = p.finish(rank);
                fin.lock().push((me, f));
            }
            Role::Consumer => {
                let mut folded = 0u64;
                let mut stalled = false;
                let outcome = run_replicated::<u64, u64, _, _>(rank, &ch, 0, |r, acc, v| {
                    folded += 1;
                    if folded == 5 && !stalled {
                        // Stall mid-reign, exactly once per rank: long
                        // enough to be deposed, alive enough to return.
                        stalled = true;
                        r.compute_exact(stall_secs);
                    }
                    *acc = acc.wrapping_add(mix64(v));
                    ControlFlow::Continue(())
                });
                oc.lock().push((me, outcome));
            }
            Role::Bystander => unreachable!(),
        }
    });
    assert_eq!(out.sim.killed, Vec::<usize>::new(), "nobody dies — every deposition is spurious");
    let expect = expected_checksum(n_producers, per_producer);
    let outcomes = outcomes.lock().clone();
    assert_eq!(outcomes.len(), 4, "all four replicas must finish");
    let final_view = outcomes.iter().map(|(_, o)| o.view).max().unwrap();
    assert!(final_view >= 2, "the stalls must force repeated view changes, got {final_view}");
    for (r, o) in &outcomes {
        assert_ne!(o.role, ReplicaRole::Died, "rank {r} only stalled, never died");
        assert_eq!(
            o.state, expect,
            "exactly-once violated on rank {r}: stale pre-deposition batches were re-folded"
        );
    }
    let finishes = finishes.lock().clone();
    let mut takeovers = 0u64;
    for (p, f) in &finishes {
        assert_eq!(f.sent, per_producer, "producer {p}");
        takeovers = takeovers.max(f.takeovers);
    }
    assert!(takeovers >= 2, "the primary role must have moved repeatedly, got {takeovers}");
}

#[test]
fn kill_before_any_commit_replays_from_zero() {
    let (n_producers, per_producer) = (2, 80);
    let primary_rank = n_producers;
    // Killed while folding its very first element: nothing committed,
    // the successor starts from cursor zero and producers replay all.
    let plan = FaultPlan::new(4).kill_at_element(primary_rank, 1);
    let (killed, outcomes, finishes) = run(n_producers, per_producer, plan);
    assert_eq!(killed, vec![primary_rank]);
    let expect = expected_checksum(n_producers, per_producer);
    let (_, successor) = &outcomes[0];
    assert_eq!(successor.role, ReplicaRole::Primary);
    assert_eq!(successor.state, expect);
    for (_, f) in &finishes {
        assert_eq!(f.sent, per_producer);
        assert_eq!(f.view, 1);
    }
}

//! Real-process failover: eight OS processes on the socket backend —
//! five producers streaming into a three-member replica group — and the
//! view-0 primary calls `std::process::abort()` mid-stream. A real
//! SIGABRT snaps every socket shut with no unwinding, no checkpoint and
//! no goodbye; the standbys must detect the silence on the wall clock,
//! elect a successor across the process boundary, and the survivors
//! must fold every payload exactly once.
//!
//! Runs under [`SocketWorld::death_tolerant`]: the launcher reports the
//! aborted rank as `None` instead of tearing the world down, and sends
//! to the corpse are dropped instead of crashing the sender.

use std::ops::ControlFlow;

use mpistream::transport::SimDuration;
use mpistream::{ChannelConfig, Role, RoutePolicy, StreamChannel, Transport};
use replica::{run_replicated, ReplicaRole, ReplicatedProducer};
use socket::SocketWorld;

const N_PRODUCERS: usize = 5;
const N_REPLICAS: usize = 3;
const PER_PRODUCER: u64 = 120;
/// Primary aborts while folding this element: far enough in that
/// checkpoints have committed, far enough from the end that an
/// uncommitted tail is mid-flight.
const KILL_AT: u64 = 150;

#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

#[test]
fn socket_primary_abort_fails_over_across_processes() {
    let results = SocketWorld::for_test(
        "socket_primary_abort_fails_over_across_processes",
        N_PRODUCERS + N_REPLICAS,
    )
    .death_tolerant()
    .run_tolerant(|rank| {
        let comm = rank.world_group();
        let me = rank.world_rank();
        let role = if me < N_PRODUCERS { Role::Producer } else { Role::Consumer };
        let config = ChannelConfig {
            element_bytes: 256,
            aggregation: 4,
            credits: Some(32),
            route: RoutePolicy::Static,
            credit_batch: 1,
            // Wall-clock failure detection: patience derives to 4 * 50ms.
            failure_timeout: Some(SimDuration::from_millis(50)),
            replicas: 2,
            replication_patience: None,
        };
        let ch = StreamChannel::create(rank, &comm, role, config);
        match role {
            Role::Producer => {
                let mut p: ReplicatedProducer<u64> = ReplicatedProducer::new(ch);
                for i in 0..PER_PRODUCER {
                    p.push(rank, (me as u64) << 32 | i);
                }
                let f = p.finish(rank);
                vec![f.sent, f.resent, f.takeovers, f.view]
            }
            Role::Consumer => {
                let initial_primary = me == N_PRODUCERS;
                let mut folded = 0u64;
                let o = run_replicated::<u64, u64, _, _>(rank, &ch, 0, |_, acc, v| {
                    folded += 1;
                    if initial_primary && folded == KILL_AT {
                        std::process::abort();
                    }
                    *acc = acc.wrapping_add(mix64(v));
                    ControlFlow::Continue(())
                });
                let role_code = match o.role {
                    ReplicaRole::Primary => 1,
                    ReplicaRole::Standby => 2,
                    ReplicaRole::Died => 3,
                };
                vec![role_code, o.view, o.state, o.commits]
            }
            Role::Bystander => unreachable!(),
        }
    });

    assert_eq!(results.len(), N_PRODUCERS + N_REPLICAS);
    let expect: u64 = (0..N_PRODUCERS as u64)
        .flat_map(|p| (0..PER_PRODUCER).map(move |i| mix64(p << 32 | i)))
        .fold(0u64, |a, b| a.wrapping_add(b));

    // The aborted primary is the one rank with nothing to report.
    assert!(results[N_PRODUCERS].is_none(), "the aborted primary must come back as None");

    // consumers[1] is the primary of view 1; consumers[2] its standby.
    let successor = results[N_PRODUCERS + 1].as_ref().expect("successor survived");
    assert_eq!(successor[0], 1, "consumers[1] must finish as primary");
    assert_eq!(successor[1], 1, "the takeover must land in view 1");
    assert_eq!(
        successor[2], expect,
        "exactly-once violated across a real process kill: checksum diverges"
    );
    assert!(successor[3] > 0, "the successor must commit the replayed tail");
    let standby = results[N_PRODUCERS + 2].as_ref().expect("standby survived");
    assert_eq!(standby[0], 2);
    assert_eq!(standby[2], expect, "standby state must match the successor's");

    // Every producer finished its full flow in the new view, and the
    // mid-stream abort left an uncommitted suffix that was replayed.
    let mut replayed = 0u64;
    for (r, row) in results.iter().enumerate().take(N_PRODUCERS) {
        let f = row.as_ref().expect("producers survive the consumer kill");
        assert_eq!(f[0], PER_PRODUCER, "producer {r} sent count");
        assert_eq!(f[3], 1, "producer {r} must have followed the takeover");
        replayed += f[1];
    }
    assert!(replayed > 0, "a mid-stream abort must leave a tail to replay");
}

//! Property tests of the replication wire protocol: every [`VsrMsg`] and
//! [`TakeoverMsg`] round-trips through the `Wire` codec, and every
//! malformed frame — truncations at each byte offset, trailing garbage,
//! bad discriminants, oversized length prefixes — decodes to a typed
//! [`WireError`], never a panic and never an attacker-sized allocation.

use mpistream::{Wire, WireError, MAX_WIRE_ELEMS};
use proptest::prelude::*;
use replica::{CreditMsg, RepState, Snapshot, TakeoverMsg, VsrMsg};

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = v.to_frame();
    let back = T::from_frame(&bytes);
    prop_assert_eq!(back.as_ref().ok(), Some(v), "decode failed: {:?}", back.as_ref().err());
}

/// Every strict prefix of a valid frame must fail with a typed error,
/// and every strict extension must report trailing bytes.
fn total_on_prefixes<T: Wire + std::fmt::Debug>(v: &T) {
    let bytes = v.to_frame();
    for cut in 0..bytes.len() {
        prop_assert!(T::from_frame(&bytes[..cut]).is_err(), "prefix {cut} decoded");
    }
    let mut extended = bytes.clone();
    extended.push(0);
    prop_assert!(
        matches!(T::from_frame(&extended), Err(WireError::TrailingBytes { .. })),
        "extended frame must report trailing bytes"
    );
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (any::<u64>(), prop::collection::vec(any::<u8>(), 0..48))
        .prop_map(|(op_num, state)| Snapshot { op_num, state })
}

fn arb_vsr_msg() -> impl Strategy<Value = VsrMsg> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(view, op_num, commit_num, state)| VsrMsg::Prepare {
                view,
                op_num,
                commit_num,
                state
            }),
        (any::<u64>(), any::<u64>(), 0usize..8)
            .prop_map(|(view, op_num, from)| VsrMsg::PrepareOk { view, op_num, from }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(view, commit_num)| VsrMsg::Commit { view, commit_num }),
        (any::<u64>(), 0usize..8).prop_map(|(view, from)| VsrMsg::StartViewChange { view, from }),
        (any::<u64>(), any::<u64>(), arb_snapshot(), any::<u64>(), 0usize..8).prop_map(
            |(view, last_normal, snapshot, commit_num, from)| VsrMsg::DoViewChange {
                view,
                last_normal,
                snapshot,
                commit_num,
                from
            }
        ),
        (any::<u64>(), arb_snapshot(), any::<u64>()).prop_map(|(view, snapshot, commit_num)| {
            VsrMsg::StartView { view, snapshot, commit_num }
        }),
        (0usize..8, any::<u64>()).prop_map(|(from, nonce)| VsrMsg::Recovery { from, nonce }),
        ((any::<u64>(), any::<u64>(), 0usize..8), (any::<bool>(), arb_snapshot(), any::<u64>()))
            .prop_map(|((view, nonce, from), (some, snap, commit))| VsrMsg::RecoveryResponse {
                view,
                nonce,
                from,
                primary: some.then_some((snap, commit)),
            }),
        any::<u64>().prop_map(|view| VsrMsg::Shutdown { view }),
    ]
}

fn arb_takeover_msg() -> impl Strategy<Value = TakeoverMsg> {
    prop_oneof![
        (any::<u64>(), prop::collection::vec((any::<u64>(), any::<u64>()), 0..16))
            .prop_map(|(view, cursors)| TakeoverMsg::Announce { view, cursors }),
        any::<u64>().prop_map(|view| TakeoverMsg::TermAck { view }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn vsr_messages_round_trip(msg in arb_vsr_msg()) {
        roundtrip(&msg);
        total_on_prefixes(&msg);
    }

    #[test]
    fn takeover_messages_round_trip(msg in arb_takeover_msg()) {
        roundtrip(&msg);
        total_on_prefixes(&msg);
    }

    #[test]
    fn rep_state_round_trips(
        acc in prop::collection::vec(any::<u8>(), 0..64),
        cursors in prop::collection::vec((any::<u64>(), any::<u64>()), 0..8),
        claims in prop::collection::vec((any::<u64>(), any::<u64>()), 0..8),
        elements in any::<u64>(),
        batches in any::<u64>(),
        bytes in any::<u64>(),
    ) {
        let rep = RepState {
            acc,
            ckpt: mpistream::ConsumerCheckpoint { cursors, claims, elements, batches, bytes },
        };
        roundtrip(&rep);
        total_on_prefixes(&rep);
    }

    #[test]
    fn credit_messages_round_trip(view in any::<u64>(), acked in any::<u64>()) {
        let credit = CreditMsg { view, acked };
        roundtrip(&credit);
        total_on_prefixes(&credit);
    }

    #[test]
    fn truncated_prepares_never_panic(
        msg in arb_vsr_msg(),
        cut_seed in any::<u64>(),
        garbage in any::<u8>(),
    ) {
        let bytes = msg.to_frame();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(VsrMsg::from_frame(&bytes[..cut]).is_err());
        // Corrupting the discriminant byte either yields another valid
        // message or a typed error — never a panic.
        let mut corrupted = bytes.clone();
        corrupted[0] = garbage;
        let _ = VsrMsg::from_frame(&corrupted);
    }
}

#[test]
fn bad_discriminants_are_typed() {
    assert!(matches!(VsrMsg::from_frame(&[9]), Err(WireError::BadDiscriminant { got: 9 })));
    assert!(matches!(VsrMsg::from_frame(&[255]), Err(WireError::BadDiscriminant { got: 255 })));
    assert!(matches!(TakeoverMsg::from_frame(&[2]), Err(WireError::BadDiscriminant { got: 2 })));
    assert!(matches!(VsrMsg::from_frame(&[]), Err(WireError::Truncated { .. })));
}

#[test]
fn oversized_state_claims_error_without_allocating() {
    // A Prepare whose state length prefix claims more elements than the
    // codec cap must be rejected before any allocation near the claim.
    let mut frame = vec![0u8]; // Prepare discriminant
    1u64.encode(&mut frame); // view
    2u64.encode(&mut frame); // op_num
    1u64.encode(&mut frame); // commit_num
    (MAX_WIRE_ELEMS + 7).encode(&mut frame); // state length prefix
    assert!(matches!(VsrMsg::from_frame(&frame), Err(WireError::LengthOverflow { .. })));
    // Under the cap but beyond the buffer: fails on the missing bytes.
    let mut frame = vec![0u8];
    1u64.encode(&mut frame);
    2u64.encode(&mut frame);
    1u64.encode(&mut frame);
    4096u64.encode(&mut frame);
    assert!(matches!(VsrMsg::from_frame(&frame), Err(WireError::Truncated { .. })));
}

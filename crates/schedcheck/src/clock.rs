//! Vector clocks — the happens-before lattice underneath the data-race
//! detector and the modeled Acquire/Release orderings.
//!
//! A clock maps thread ids to epochs. Thread `t`'s own component is
//! bumped at every granted schedule point, so each visible operation has
//! a unique `(tid, epoch)` identity; synchronizing operations (mutex
//! hand-offs, Acquire loads of Release stores, spawn/join/notify edges)
//! join clocks, which is exactly the happens-before relation of the
//! explored schedule.

/// A grow-on-demand vector clock over thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    /// Thread `t`'s component (0 if never touched).
    pub(crate) fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Bump thread `t`'s component and return the new epoch.
    pub(crate) fn inc(&mut self, t: usize) -> u64 {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
        self.0[t]
    }

    /// Pointwise maximum: everything `other` has seen, we have now seen.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, &o) in self.0.iter_mut().zip(&other.0) {
            *s = (*s).max(o);
        }
    }
}

//! The execution engine: one *execution* runs the model closure on real
//! OS threads, but every shadow-sync operation is a *schedule point*
//! where the running thread hands a decision to the engine. Exactly one
//! model thread holds the logical token at any instant, so an execution
//! is a deterministic function of the sequence of decisions — which is
//! what makes DFS exploration and trace replay possible.
//!
//! Scheduling is *distributed*: there is no separate scheduler thread.
//! Whichever thread reaches a schedule point (or finishes, or arrives at
//! its start point) computes the enabled set under the engine lock and,
//! if no thread currently holds the token, consumes the next DFS/replay
//! decision. Choosing itself means it simply keeps running — a
//! straight-line execution costs zero context switches.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard};

use crate::clock::VClock;
use crate::{codes, Violation};

pub(crate) type Tid = usize;
pub(crate) type ObjId = u64;

/// Panic payload used to unwind model threads when an execution is
/// being torn down (violation found, or exploration aborted).
pub(crate) struct AbortUnwind;

/// Why a parked thread is not currently runnable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Blocked {
    /// Waiting to (re)acquire a shadow mutex.
    Lock(ObjId),
    /// Waiting inside `Condvar::wait[_timeout]`; leaves only via a
    /// notify (→ `Lock(mutex)`) or, if `timeout_ns` is set, via an
    /// always-enabled `Timeout` pseudo-transition.
    Condvar { cv: ObjId, mutex: ObjId, timeout_ns: Option<u64> },
    /// Waiting for another model thread to finish.
    Join(Tid),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Spawned but has not yet arrived at its start point.
    Nascent,
    /// Holds the logical token; the only thread executing user code.
    Running,
    /// Parked at a schedule point, runnable whenever chosen.
    AtPoint,
    Blocked(Blocked),
    Finished,
}

/// A schedulable decision: run a thread, or fire a `wait_timeout`
/// expiry on one (which advances virtual time and moves the waiter to
/// the mutex queue without giving anyone the token).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Transition {
    Run(Tid),
    Timeout(Tid),
}

pub(crate) struct ThreadSt {
    pub(crate) status: Status,
    pub(crate) clock: VClock,
    /// Description of the operation this thread is parked at (or last
    /// granted) — used for traces and deadlock reports.
    pub(crate) desc: &'static str,
    /// Set by a `Timeout` transition, consumed by `wait_timeout`'s
    /// grant to build its `WaitTimeoutResult`.
    pub(crate) timed_out: bool,
}

impl ThreadSt {
    fn new() -> Self {
        ThreadSt {
            status: Status::Nascent,
            clock: VClock::default(),
            desc: "spawn",
            timed_out: false,
        }
    }
}

#[derive(Default)]
pub(crate) struct MutexSt {
    pub(crate) held_by: Option<Tid>,
    /// Clock released by the last unlocker; joined by the next locker.
    pub(crate) clock: VClock,
}

#[derive(Default)]
pub(crate) struct AtomSt {
    /// Release clock of the last Release-or-stronger store (extended by
    /// Relaxed RMWs, which continue the release sequence; cleared by a
    /// plain Relaxed store).
    pub(crate) release: VClock,
}

/// Per-`RaceCell` access history, FastTrack-style: last write epoch and
/// the read epochs since that write.
#[derive(Default)]
pub(crate) struct CellSt {
    pub(crate) write: Option<(Tid, u64)>,
    pub(crate) reads: Vec<(Tid, u64)>,
}

pub(crate) struct AllocSite {
    pub(crate) ty: &'static str,
    pub(crate) step: usize,
}

/// One DFS decision: the options that were enabled and which one we
/// took this time round.
#[derive(Clone)]
pub(crate) struct Choice {
    pub(crate) options: Vec<Transition>,
    pub(crate) cur: usize,
}

pub(crate) enum Mode {
    /// DFS exploration: replay the prefix in `path`, extend with
    /// first-choice (index 0 = keep the last thread running) beyond it.
    Dfs,
    /// Trace replay: take the given decision indices verbatim.
    Forced(Vec<usize>),
}

pub(crate) struct TraceEntry {
    pub(crate) choice: usize,
    pub(crate) n_options: usize,
    pub(crate) tr: Transition,
    pub(crate) desc: &'static str,
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadSt>,
    pub(crate) nascent: usize,
    pub(crate) last_run: Option<Tid>,
    pub(crate) preemptions: usize,
    pub(crate) preemption_bound: usize,
    pub(crate) max_steps: usize,
    pub(crate) step: usize,
    /// Virtual nanosecond clock backing the shadow `Instant`.
    pub(crate) clock_ns: u64,
    pub(crate) next_obj: ObjId,
    pub(crate) mutexes: HashMap<ObjId, MutexSt>,
    pub(crate) atomics: HashMap<ObjId, AtomSt>,
    pub(crate) cells: HashMap<ObjId, CellSt>,
    pub(crate) allocs: HashMap<usize, AllocSite>,
    pub(crate) mode: Mode,
    pub(crate) path: Vec<Choice>,
    pub(crate) pos: usize,
    pub(crate) trace: Vec<TraceEntry>,
    pub(crate) violation: Option<Violation>,
    pub(crate) abort: bool,
}

impl ExecState {
    fn new(preemption_bound: usize, max_steps: usize, mode: Mode, path: Vec<Choice>) -> Self {
        ExecState {
            threads: Vec::new(),
            nascent: 0,
            last_run: None,
            preemptions: 0,
            preemption_bound,
            max_steps,
            step: 0,
            clock_ns: 0,
            next_obj: 0,
            mutexes: HashMap::new(),
            atomics: HashMap::new(),
            cells: HashMap::new(),
            allocs: HashMap::new(),
            mode,
            path,
            pos: 0,
            trace: Vec::new(),
            violation: None,
            abort: false,
        }
    }

    pub(crate) fn fresh_obj(&mut self) -> ObjId {
        self.next_obj += 1;
        self.next_obj
    }

    /// Record a violation (first one wins) and put the execution into
    /// abort mode so every thread unwinds at its next schedule point.
    pub(crate) fn report(&mut self, code: &'static str, message: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                code,
                message,
                trace: self.trace_string(),
                log: self.log_string(),
            });
        }
        self.abort = true;
    }

    pub(crate) fn trace_string(&self) -> String {
        let v: Vec<String> = self.trace.iter().map(|e| e.choice.to_string()).collect();
        v.join(",")
    }

    fn log_string(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.trace.iter().enumerate() {
            let what = match e.tr {
                Transition::Run(t) => format!("t{t} {}", e.desc),
                Transition::Timeout(t) => format!("t{t} timeout fires ({})", e.desc),
            };
            out.push_str(&format!("  {i:4}: {what} [choice {}/{}]\n", e.choice, e.n_options));
        }
        out
    }

    fn enabled(&self) -> Vec<Transition> {
        let mut runs: Vec<Tid> = Vec::new();
        let mut timeouts: Vec<Tid> = Vec::new();
        for (t, th) in self.threads.iter().enumerate() {
            match th.status {
                Status::AtPoint => runs.push(t),
                Status::Blocked(Blocked::Lock(m))
                    if self.mutexes.get(&m).is_none_or(|ms| ms.held_by.is_none()) =>
                {
                    runs.push(t);
                }
                Status::Blocked(Blocked::Join(u))
                    if matches!(self.threads[u].status, Status::Finished) =>
                {
                    runs.push(t);
                }
                Status::Blocked(Blocked::Condvar { timeout_ns: Some(_), .. }) => {
                    timeouts.push(t);
                }
                _ => {}
            }
        }
        // Order matters: index 0 must be "keep the last thread going"
        // so the first DFS path through any subtree is preemption-free.
        if let Some(l) = self.last_run {
            if let Some(p) = runs.iter().position(|&t| t == l) {
                runs.remove(p);
                runs.insert(0, l);
            }
        }
        let mut out: Vec<Transition> = runs.into_iter().map(Transition::Run).collect();
        out.extend(timeouts.into_iter().map(Transition::Timeout));
        out
    }

    /// Consume the next decision (DFS path extension or forced replay).
    fn decide(&mut self, options: &[Transition]) -> usize {
        let pos = self.pos;
        self.pos += 1;
        match &self.mode {
            Mode::Dfs => {
                if pos < self.path.len() {
                    if self.path[pos].options != options {
                        self.report(
                            codes::INTERNAL,
                            format!(
                                "non-deterministic model: replaying decision {pos} saw options \
                                 {:?} but recorded {:?}; model code must not branch on anything \
                                 outside shadow-sync state (e.g. real time, hash iteration order)",
                                options, self.path[pos].options
                            ),
                        );
                        return 0;
                    }
                    self.path[pos].cur
                } else {
                    self.path.push(Choice { options: options.to_vec(), cur: 0 });
                    0
                }
            }
            Mode::Forced(v) => {
                let i = v.get(pos).copied().unwrap_or(0);
                i.min(options.len() - 1)
            }
        }
    }

    fn all_finished(&self) -> bool {
        !self.threads.is_empty()
            && self.threads.iter().all(|t| matches!(t.status, Status::Finished))
    }

    fn deadlock_report(&mut self) {
        let mut lines = Vec::new();
        let mut lost_wakeup = false;
        for (t, th) in self.threads.iter().enumerate() {
            let why = match th.status {
                Status::Finished => continue,
                Status::Blocked(Blocked::Lock(m)) => format!("blocked locking mutex #{m}"),
                Status::Blocked(Blocked::Condvar { cv, timeout_ns: None, .. }) => {
                    lost_wakeup = true;
                    format!("waiting on condvar #{cv} with no pending notify (lost wakeup?)")
                }
                Status::Blocked(Blocked::Condvar { cv, .. }) => {
                    format!("waiting on condvar #{cv}")
                }
                Status::Blocked(Blocked::Join(u)) => format!("joining t{u}"),
                s => format!("{s:?}"),
            };
            lines.push(format!("t{t} at `{}`: {why}", th.desc));
        }
        let kind = if lost_wakeup { "lost wakeup / deadlock" } else { "deadlock" };
        self.report(codes::SC202, format!("{kind}: no enabled transition; {}", lines.join("; ")));
    }

    /// If no thread holds the token and nothing is still materialising,
    /// consume decisions until some thread is Running (or the execution
    /// is over / aborted). Called under the engine lock by whichever
    /// thread just changed scheduler-visible state.
    pub(crate) fn try_schedule(&mut self) {
        loop {
            if self.abort || self.nascent > 0 {
                return;
            }
            if self.threads.iter().any(|t| matches!(t.status, Status::Running)) {
                return;
            }
            if self.all_finished() {
                return;
            }
            let enabled = self.enabled();
            if enabled.is_empty() {
                self.deadlock_report();
                return;
            }
            // Preemption bounding: once the budget is spent, a thread
            // that can keep running must keep running.
            let options = match self.last_run {
                Some(l)
                    if self.preemptions >= self.preemption_bound
                        && enabled.first() == Some(&Transition::Run(l)) =>
                {
                    vec![Transition::Run(l)]
                }
                _ => enabled,
            };
            let idx = self.decide(&options);
            if self.abort {
                return;
            }
            let tr = options[idx];
            self.step += 1;
            if self.step > self.max_steps {
                self.report(
                    codes::INTERNAL,
                    format!(
                        "execution exceeded {} schedule points — livelock in the model, or \
                         raise Checker::max_steps",
                        self.max_steps
                    ),
                );
                return;
            }
            if let Some(l) = self.last_run {
                let could_continue = options.first() == Some(&Transition::Run(l));
                let switched = !matches!(tr, Transition::Run(t) if t == l);
                if could_continue && switched {
                    self.preemptions += 1;
                }
            }
            let desc = match tr {
                Transition::Run(t) | Transition::Timeout(t) => self.threads[t].desc,
            };
            self.trace.push(TraceEntry { choice: idx, n_options: options.len(), tr, desc });
            match tr {
                Transition::Run(t) => {
                    self.threads[t].status = Status::Running;
                    self.last_run = Some(t);
                    return;
                }
                Transition::Timeout(t) => {
                    if let Status::Blocked(Blocked::Condvar {
                        mutex, timeout_ns: Some(d), ..
                    }) = self.threads[t].status
                    {
                        self.clock_ns = self.clock_ns.saturating_add(d);
                        self.threads[t].timed_out = true;
                        self.threads[t].status = Status::Blocked(Blocked::Lock(mutex));
                    }
                    // No token granted; loop for the next decision.
                }
            }
        }
    }

    // --- race detection on RaceCell accesses -------------------------

    pub(crate) fn cell_read(&mut self, id: ObjId, tid: Tid, what: &'static str) {
        // Cell accesses are not schedule points, but they must still be
        // distinguishable from the thread's last sync op — otherwise an
        // access *after* a spawn/release would wear the epoch of the
        // spawn itself and be invisible to the detector.
        let e = self.threads[tid].clock.inc(tid);
        let clock = self.threads[tid].clock.clone();
        let cst = self.cells.entry(id).or_default();
        if let Some((w, we)) = cst.write {
            if w != tid && clock.get(w) < we {
                self.report(
                    codes::SC201,
                    format!(
                        "data race on {what}: read by t{tid} is concurrent with write by t{w} \
                         (no happens-before edge)"
                    ),
                );
                return;
            }
        }
        let cst = self.cells.entry(id).or_default();
        match cst.reads.iter_mut().find(|(t, _)| *t == tid) {
            Some(slot) => slot.1 = e,
            None => cst.reads.push((tid, e)),
        }
    }

    pub(crate) fn cell_write(&mut self, id: ObjId, tid: Tid, what: &'static str) {
        let e = self.threads[tid].clock.inc(tid);
        let clock = self.threads[tid].clock.clone();
        let cst = self.cells.entry(id).or_default();
        if let Some((w, we)) = cst.write {
            if w != tid && clock.get(w) < we {
                self.report(
                    codes::SC201,
                    format!(
                        "data race on {what}: write by t{tid} is concurrent with write by t{w} \
                         (no happens-before edge)"
                    ),
                );
                return;
            }
        }
        let racy_reader =
            cst.reads.iter().find(|(t, re)| *t != tid && clock.get(*t) < *re).map(|(t, _)| *t);
        if let Some(r) = racy_reader {
            self.report(
                codes::SC201,
                format!(
                    "data race on {what}: write by t{tid} is concurrent with read by t{r} \
                     (no happens-before edge)"
                ),
            );
            return;
        }
        let cst = self.cells.entry(id).or_default();
        cst.write = Some((tid, e));
        cst.reads.clear();
    }

    // --- modeled memory orderings on atomics -------------------------

    pub(crate) fn atomic_load_effects(&mut self, id: ObjId, tid: Tid, ord: Ordering) {
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            let rel = self.atomics.entry(id).or_default().release.clone();
            self.threads[tid].clock.join(&rel);
        }
    }

    pub(crate) fn atomic_store_effects(&mut self, id: ObjId, tid: Tid, ord: Ordering) {
        let clock = self.threads[tid].clock.clone();
        let a = self.atomics.entry(id).or_default();
        if matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
            a.release = clock;
        } else {
            // A Relaxed store starts a fresh (empty) release sequence.
            a.release = VClock::default();
        }
    }

    pub(crate) fn atomic_rmw_effects(&mut self, id: ObjId, tid: Tid, ord: Ordering) {
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            let rel = self.atomics.entry(id).or_default().release.clone();
            self.threads[tid].clock.join(&rel);
        }
        if matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
            let clock = self.threads[tid].clock.clone();
            self.atomics.entry(id).or_default().release = clock;
        }
        // A Relaxed RMW leaves the release clock in place: it continues
        // the release sequence headed by the previous Release store.
    }
}

pub(crate) use std::sync::atomic::Ordering;

/// The shared engine: state + the single condvar every parked model
/// thread (and the controller) waits on.
pub(crate) struct Exec {
    pub(crate) st: OsMutex<ExecState>,
    pub(crate) cv: OsCondvar,
    handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Exec {
    /// Poison-tolerant lock: a model-thread panic while holding the
    /// engine lock must not cascade into every other thread.
    pub(crate) fn lock(&self) -> OsGuard<'_, ExecState> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }
}

// --- per-thread context ----------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Exec>,
    pub(crate) tid: Tid,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn ctx() -> Ctx {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("schedcheck shadow type used outside Checker::model (or from a std thread)")
    })
}

pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// A schedule point. `arrive` records why the thread is parking (and
/// applies entry effects such as a condvar wait releasing its mutex);
/// once the engine grants the token back, `grant` applies the
/// operation's effects and produces its result — all under the lock.
pub(crate) fn sync_op<R>(
    desc: &'static str,
    arrive: impl FnOnce(&mut ExecState, Tid) -> Status,
    grant: impl FnOnce(&mut ExecState, Tid) -> R,
) -> R {
    let ctx = ctx();
    let mut st = ctx.exec.lock();
    if st.abort || std::thread::panicking() {
        // Teardown / unwinding: apply the effect without scheduling so
        // destructors of model types still run to completion.
        if st.abort && !std::thread::panicking() {
            drop(st);
            panic::panic_any(AbortUnwind);
        }
        let r = grant(&mut st, ctx.tid);
        drop(st);
        ctx.exec.cv.notify_all();
        return r;
    }
    let status = arrive(&mut st, ctx.tid);
    st.threads[ctx.tid].status = status;
    st.threads[ctx.tid].desc = desc;
    st.try_schedule();
    let granted_inline = matches!(st.threads[ctx.tid].status, Status::Running);
    if !granted_inline {
        ctx.exec.cv.notify_all();
        loop {
            if matches!(st.threads[ctx.tid].status, Status::Running) {
                break;
            }
            if st.abort {
                drop(st);
                ctx.exec.cv.notify_all();
                panic::panic_any(AbortUnwind);
            }
            st = ctx.exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    st.threads[ctx.tid].clock.inc(ctx.tid);
    let r = grant(&mut st, ctx.tid);
    drop(st);
    r
}

/// A non-point operation: touches engine state under the lock without
/// yielding the token (used by `RaceCell` accesses, `Instant::now`,
/// allocation tracking). `f`'s third argument says whether the
/// execution is degraded (teardown/unwinding) — detection must be
/// skipped then, effects still applied. If `f` reports a violation the
/// calling thread unwinds immediately.
pub(crate) fn direct_op<R>(f: impl FnOnce(&mut ExecState, Tid, bool) -> R) -> R {
    let ctx = ctx();
    let mut st = ctx.exec.lock();
    let degraded = st.abort || std::thread::panicking();
    let had_violation = st.violation.is_some();
    let r = f(&mut st, ctx.tid, degraded);
    let tripped = !degraded && !had_violation && st.violation.is_some();
    drop(st);
    if tripped {
        ctx.exec.cv.notify_all();
        panic::panic_any(AbortUnwind);
    }
    r
}

/// Spawn a model thread: allocate its Tid and seed its clock from the
/// parent under the lock, then start the OS thread. The child parks at
/// a "thread start" point before running `f`.
pub(crate) fn spawn_model(
    st: &mut ExecState,
    exec: &Arc<Exec>,
    parent: Option<Tid>,
    f: Box<dyn FnOnce() + Send>,
) -> Tid {
    let tid = st.threads.len();
    let mut th = ThreadSt::new();
    if let Some(p) = parent {
        th.clock = st.threads[p].clock.clone();
    }
    th.clock.inc(tid);
    st.threads.push(th);
    st.nascent += 1;
    let exec2 = Arc::clone(exec);
    let h = std::thread::Builder::new()
        .name(format!("schedcheck-t{tid}"))
        .spawn(move || thread_main(exec2, tid, f))
        .expect("schedcheck: OS thread spawn failed");
    exec.handles.lock().unwrap_or_else(|e| e.into_inner()).push(h);
    tid
}

fn thread_main(exec: Arc<Exec>, tid: Tid, f: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec: Arc::clone(&exec), tid }));
    // Arrive at the start point and wait for the first grant.
    let mut run_body = true;
    {
        let mut st = exec.lock();
        st.nascent -= 1;
        st.threads[tid].status = Status::AtPoint;
        st.threads[tid].desc = "thread start";
        st.try_schedule();
        if !matches!(st.threads[tid].status, Status::Running) {
            exec.cv.notify_all();
            loop {
                if matches!(st.threads[tid].status, Status::Running) {
                    break;
                }
                if st.abort {
                    run_body = false;
                    break;
                }
                st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        if run_body {
            st.threads[tid].clock.inc(tid);
        }
    }
    // Whether the body ran or not, the closure (and everything it
    // captured) must be dropped *before* this thread reports Finished:
    // scoped spawns are allowed to resume unwinding — invalidating
    // borrows — once every child is Finished.
    if run_body {
        let res = panic::catch_unwind(AssertUnwindSafe(f));
        if let Err(p) = res {
            if !p.is::<AbortUnwind>() {
                let msg = if let Some(s) = p.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = p.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "model thread panicked".to_string()
                };
                let mut st = exec.lock();
                st.report(codes::PANIC, format!("t{tid} panicked: {msg}"));
            }
        }
    } else {
        drop(f);
    }
    let mut st = exec.lock();
    st.threads[tid].status = Status::Finished;
    st.threads[tid].clock.inc(tid);
    st.try_schedule();
    drop(st);
    exec.cv.notify_all();
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Outcome of a single execution.
pub(crate) struct RunResult {
    pub(crate) path: Vec<Choice>,
    pub(crate) violation: Option<Violation>,
}

/// Run the model closure once under the given decision mode. Blocks
/// until every model thread has finished (normally or by unwinding).
pub(crate) fn run_once(
    f: &Arc<dyn Fn() + Send + Sync>,
    preemption_bound: usize,
    max_steps: usize,
    mode: Mode,
    path: Vec<Choice>,
) -> RunResult {
    let exec = Arc::new(Exec {
        st: OsMutex::new(ExecState::new(preemption_bound, max_steps, mode, path)),
        cv: OsCondvar::new(),
        handles: OsMutex::new(Vec::new()),
    });
    {
        let mut st = exec.lock();
        let f = Arc::clone(f);
        spawn_model(&mut st, &exec, None, Box::new(move || f()));
    }
    exec.cv.notify_all();
    // Controller: wait for quiescence (all model threads finished).
    let mut st = exec.lock();
    while !st.all_finished() || st.nascent > 0 {
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    // A clean execution with live allocations is a leak.
    if st.violation.is_none() && !st.allocs.is_empty() {
        let mut sites: Vec<String> = st
            .allocs
            .values()
            .map(|a| format!("{} (allocated at step {})", a.ty, a.step))
            .collect();
        sites.sort();
        sites.truncate(4);
        let n = st.allocs.len();
        st.report(
            codes::SC203,
            format!("{n} allocation(s) from boxed::into_raw never reclaimed: {}", sites.join(", ")),
        );
    }
    let violation = st.violation.clone();
    let path = std::mem::take(&mut st.path);
    drop(st);
    let handles = std::mem::take(&mut *exec.handles.lock().unwrap_or_else(|e| e.into_inner()));
    for h in handles {
        let _ = h.join();
    }
    RunResult { path, violation }
}

/// Advance the DFS path to the next unexplored schedule. Returns false
/// when the tree is exhausted.
pub(crate) fn backtrack(path: &mut Vec<Choice>) -> bool {
    while let Some(c) = path.last_mut() {
        c.cur += 1;
        if c.cur < c.options.len() {
            return true;
        }
        path.pop();
    }
    false
}

//! schedcheck — an in-house, loom-style bounded model checker and
//! data-race sanitizer for the native backend's lock-free core.
//!
//! A model is an ordinary closure that uses the shadow primitives from
//! this crate (re-exported through `native`'s `crate::sync` facade under
//! `--cfg schedcheck`) instead of `std`'s. [`Checker::model`] runs the
//! closure over and over on real OS threads, but every shadow operation
//! is a *schedule point* where exactly one thread is allowed to proceed
//! — so each run is a deterministic function of the decision sequence,
//! and DFS over those decisions enumerates distinct interleavings.
//! Exploration is bounded by a preemption budget (CHESS-style): the
//! first schedules explored are the nearly-sequential ones where most
//! concurrency bugs already manifest, and `SCHEDCHECK_PREEMPTIONS=2`
//! covers every bug this repo has actually shipped.
//!
//! What it detects (streamcheck catalogue codes, see DESIGN.md §14):
//!
//! | code  | violation |
//! |-------|-----------|
//! | SC201 | data race: two unordered accesses (≥1 write) to a [`cell::RaceCell`], per vector-clock happens-before over the modeled Acquire/Release/Relaxed edges |
//! | SC202 | deadlock / lost wakeup: no enabled transition while threads are still parked (condvar waits with no pending notify are called out explicitly) |
//! | SC203 | node leak or double free through [`boxed::into_raw`] / [`boxed::from_raw`] |
//!
//! Every violation carries a **replayable trace**: the comma-separated
//! decision indices of the failing schedule. Feed it to
//! [`Checker::replay`] to re-run exactly that interleaving under a
//! debugger.
//!
//! Honest limits: values are sequentially consistent regardless of
//! `Ordering` (orderings only shape happens-before, so races are found
//! but store-buffering weirdness is not); `compare_exchange_weak` never
//! fails spuriously; plain `Condvar::wait` has no spurious wakes
//! (`wait_timeout`'s always-enabled expiry models them where they
//! matter). Model code must be deterministic apart from shadow-sync
//! state — no real time, no hash-order-dependent branching.

mod clock;
mod exec;
mod shadow;

pub use shadow::atomic;
pub use shadow::boxed;
pub use shadow::cell;
pub use shadow::thread;
pub use shadow::{Condvar, LockResult, Mutex, MutexGuard, NeverPoison, WaitTimeoutResult};

/// Virtual-clock time types (shadowing `std::time::Instant`).
pub mod time {
    pub use crate::shadow::Instant;
    pub use std::time::Duration;
}

/// Violation codes, aligned with the streamcheck lint catalogue.
pub mod codes {
    /// Data race on a `RaceCell` (unsafe shared location).
    pub const SC201: &str = "SC201";
    /// Deadlock or lost wakeup: no enabled transition remains.
    pub const SC202: &str = "SC202";
    /// Node leak or double free through `boxed::into_raw`/`from_raw`.
    pub const SC203: &str = "SC203";
    /// A model thread panicked (assertion failure inside the model).
    pub const PANIC: &str = "SC2-PANIC";
    /// Checker-internal error (non-deterministic model, step-limit hit).
    pub const INTERNAL: &str = "SC2-INTERNAL";
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// One of [`codes`].
    pub code: &'static str,
    pub message: String,
    /// Comma-separated decision indices — pass to [`Checker::replay`].
    pub trace: String,
    /// Human-readable schedule log (one line per decision).
    pub log: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}: {}", self.code, self.message)?;
        writeln!(f, "replay trace: \"{}\"", self.trace)?;
        write!(f, "schedule log:\n{}", self.log)
    }
}

/// Result of exploring a model.
#[derive(Debug)]
pub struct Outcome {
    /// Distinct complete schedules executed.
    pub schedules: u64,
    pub violation: Option<Violation>,
    /// True if exploration stopped at `max_schedules` with unexplored
    /// schedules remaining.
    pub capped: bool,
}

impl Outcome {
    /// Assert the model is clean and was meaningfully explored.
    /// Panics with the full violation report otherwise.
    pub fn expect_clean(&self, min_schedules: u64) {
        if let Some(v) = &self.violation {
            panic!("schedcheck violation after {} schedules:\n{v}", self.schedules);
        }
        assert!(
            self.schedules >= min_schedules,
            "explored only {} schedules (wanted >= {min_schedules}); \
             model too small or bounds too tight",
            self.schedules
        );
    }
}

/// The exploration driver. Construct, tune bounds, then run a model.
///
/// ```
/// use schedcheck::{Checker, atomic::{AtomicU64, Ordering}};
/// use std::sync::Arc;
///
/// let out = Checker::new().max_schedules(500).model(|| {
///     let n = Arc::new(AtomicU64::new(0));
///     let n2 = Arc::clone(&n);
///     let t = schedcheck::thread::spawn(move || {
///         n2.fetch_add(1, Ordering::AcqRel);
///     });
///     n.fetch_add(1, Ordering::AcqRel);
///     t.join().unwrap();
///     assert_eq!(n.load(Ordering::Acquire), 2);
/// });
/// out.expect_clean(2);
/// ```
#[derive(Clone, Debug)]
pub struct Checker {
    preemptions: usize,
    max_schedules: u64,
    max_steps: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Self::new()
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl Checker {
    /// Defaults: preemption bound from `SCHEDCHECK_PREEMPTIONS` (2),
    /// schedule cap from `SCHEDCHECK_MAX_SCHEDULES` (20 000), 200 000
    /// schedule points per execution.
    pub fn new() -> Self {
        Checker {
            preemptions: env_usize("SCHEDCHECK_PREEMPTIONS", 2),
            max_schedules: env_usize("SCHEDCHECK_MAX_SCHEDULES", 20_000) as u64,
            max_steps: 200_000,
        }
    }

    /// Preemption budget per execution (CHESS bound). Switches away
    /// from a thread that could have kept running spend budget; forced
    /// switches (the runner blocked) are free.
    pub fn preemptions(mut self, n: usize) -> Self {
        self.preemptions = n;
        self
    }

    /// Stop after this many schedules even if the DFS tree is larger
    /// (`Outcome::capped` reports whether anything was left).
    pub fn max_schedules(mut self, n: u64) -> Self {
        self.max_schedules = n;
        self
    }

    /// Per-execution schedule-point limit (livelock backstop).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Explore the model. Returns after the first violation, after the
    /// DFS tree is exhausted, or after `max_schedules` schedules.
    pub fn model<F>(&self, f: F) -> Outcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: std::sync::Arc<dyn Fn() + Send + Sync> = std::sync::Arc::new(f);
        let mut path: Vec<exec::Choice> = Vec::new();
        let mut schedules = 0u64;
        loop {
            let res = exec::run_once(
                &f,
                self.preemptions,
                self.max_steps,
                exec::Mode::Dfs,
                std::mem::take(&mut path),
            );
            schedules += 1;
            if res.violation.is_some() {
                return Outcome { schedules, violation: res.violation, capped: false };
            }
            path = res.path;
            let more = exec::backtrack(&mut path);
            if !more {
                return Outcome { schedules, violation: None, capped: false };
            }
            if schedules >= self.max_schedules {
                return Outcome { schedules, violation: None, capped: true };
            }
        }
    }

    /// [`Self::model`], panicking with the full report on violation.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.model(f).expect_clean(1);
    }

    /// Re-run one exact schedule from a violation's `trace` string.
    /// Returns the violation it reproduces (if it still fires).
    pub fn replay<F>(&self, trace: &str, f: F) -> Option<Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let forced: Vec<usize> = trace.split(',').filter_map(|s| s.trim().parse().ok()).collect();
        let f: std::sync::Arc<dyn Fn() + Send + Sync> = std::sync::Arc::new(f);
        let res = exec::run_once(
            &f,
            // Replay must not re-bound the schedule it is reproducing.
            usize::MAX,
            self.max_steps,
            exec::Mode::Forced(forced),
            Vec::new(),
        );
        res.violation
    }
}

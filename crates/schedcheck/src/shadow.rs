//! Shadow sync primitives: drop-in replacements for the `std` types the
//! native backend uses, instrumented as schedule points of the engine in
//! [`crate::exec`]. The API mirrors `std` closely enough that
//! `crates/native`'s `sync` facade can re-export either world from the
//! same call sites.
//!
//! Semantics and honest approximations:
//!
//! - **Values are sequentially consistent.** A load always observes the
//!   latest store in the explored schedule, for every `Ordering`. The
//!   orderings still matter: they drive the vector-clock happens-before
//!   edges the race detector uses (an Acquire load of a Release store
//!   creates an edge; Relaxed traffic does not). Bugs that need a stale
//!   value (store buffering, read-reordering) are out of scope and the
//!   docs say so.
//! - `compare_exchange_weak` never fails spuriously (its retry loop is
//!   still explored via scheduling).
//! - `Condvar::wait` has no spurious wakeups — this keeps lost-wakeup
//!   detection sharp. `wait_timeout` can *always* time out (an
//!   always-enabled pseudo-transition), which doubles as the model of a
//!   spurious wake at those call sites.
//! - `notify_one` wakes the lowest-tid waiter (deterministic).
//! - `Instant` reads a per-execution virtual nanosecond clock advanced
//!   by `thread::sleep` and by `wait_timeout` expiries.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Add, Deref, DerefMut, Sub};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as OsMutex, OnceLock};
use std::time::Duration;

use crate::codes;
use crate::exec::{self, Blocked, ExecState, ObjId, Status, Tid};

fn oid(slot: &OnceLock<ObjId>, st: &mut ExecState) -> ObjId {
    *slot.get_or_init(|| st.fresh_obj())
}

/// `lock()` never poisons under the model (panics abort the whole
/// execution), but the facade keeps `std`'s `Result` shape so call
/// sites can say `.unwrap()` in both worlds.
pub type LockResult<T> = Result<T, NeverPoison>;

#[derive(Debug)]
pub struct NeverPoison;

// ---------------------------------------------------------------------
// atomics
// ---------------------------------------------------------------------

pub mod atomic {
    use super::*;
    pub use std::sync::atomic::Ordering;

    macro_rules! int_atomic {
        ($name:ident, $t:ty, $label:literal) => {
            pub struct $name {
                id: OnceLock<ObjId>,
                v: UnsafeCell<$t>,
            }

            // Matches std: atomics are freely shared.
            unsafe impl Send for $name {}
            unsafe impl Sync for $name {}

            impl $name {
                pub const fn new(v: $t) -> Self {
                    $name { id: OnceLock::new(), v: UnsafeCell::new(v) }
                }

                pub fn load(&self, ord: Ordering) -> $t {
                    exec::sync_op(
                        concat!($label, "::load"),
                        |_, _| Status::AtPoint,
                        |st, tid| {
                            let id = oid(&self.id, st);
                            st.atomic_load_effects(id, tid, ord);
                            unsafe { *self.v.get() }
                        },
                    )
                }

                pub fn store(&self, val: $t, ord: Ordering) {
                    exec::sync_op(
                        concat!($label, "::store"),
                        |_, _| Status::AtPoint,
                        |st, tid| {
                            let id = oid(&self.id, st);
                            st.atomic_store_effects(id, tid, ord);
                            unsafe { *self.v.get() = val };
                        },
                    )
                }

                pub fn swap(&self, val: $t, ord: Ordering) -> $t {
                    exec::sync_op(
                        concat!($label, "::swap"),
                        |_, _| Status::AtPoint,
                        |st, tid| {
                            let id = oid(&self.id, st);
                            st.atomic_rmw_effects(id, tid, ord);
                            let slot = unsafe { &mut *self.v.get() };
                            std::mem::replace(slot, val)
                        },
                    )
                }

                pub fn compare_exchange(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    exec::sync_op(
                        concat!($label, "::compare_exchange"),
                        |_, _| Status::AtPoint,
                        |st, tid| {
                            let id = oid(&self.id, st);
                            let slot = unsafe { &mut *self.v.get() };
                            if *slot == current {
                                st.atomic_rmw_effects(id, tid, success);
                                Ok(std::mem::replace(slot, new))
                            } else {
                                st.atomic_load_effects(id, tid, failure);
                                Err(*slot)
                            }
                        },
                    )
                }

                /// Never fails spuriously under the model.
                pub fn compare_exchange_weak(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    int_atomic!(AtomicBool, bool, "AtomicBool");
    int_atomic!(AtomicU32, u32, "AtomicU32");
    int_atomic!(AtomicU64, u64, "AtomicU64");
    int_atomic!(AtomicUsize, usize, "AtomicUsize");

    macro_rules! fetch_ops {
        ($name:ident, $t:ty, $label:literal) => {
            impl $name {
                pub fn fetch_add(&self, val: $t, ord: Ordering) -> $t {
                    exec::sync_op(
                        concat!($label, "::fetch_add"),
                        |_, _| Status::AtPoint,
                        |st, tid| {
                            let id = oid(&self.id, st);
                            st.atomic_rmw_effects(id, tid, ord);
                            let slot = unsafe { &mut *self.v.get() };
                            let old = *slot;
                            *slot = old.wrapping_add(val);
                            old
                        },
                    )
                }

                pub fn fetch_sub(&self, val: $t, ord: Ordering) -> $t {
                    exec::sync_op(
                        concat!($label, "::fetch_sub"),
                        |_, _| Status::AtPoint,
                        |st, tid| {
                            let id = oid(&self.id, st);
                            st.atomic_rmw_effects(id, tid, ord);
                            let slot = unsafe { &mut *self.v.get() };
                            let old = *slot;
                            *slot = old.wrapping_sub(val);
                            old
                        },
                    )
                }
            }
        };
    }

    fetch_ops!(AtomicU32, u32, "AtomicU32");
    fetch_ops!(AtomicU64, u64, "AtomicU64");
    fetch_ops!(AtomicUsize, usize, "AtomicUsize");

    pub struct AtomicPtr<T> {
        id: OnceLock<ObjId>,
        v: UnsafeCell<*mut T>,
    }

    // Matches std: `AtomicPtr<T>` is Send + Sync for all `T`.
    unsafe impl<T> Send for AtomicPtr<T> {}
    unsafe impl<T> Sync for AtomicPtr<T> {}

    impl<T> AtomicPtr<T> {
        pub const fn new(p: *mut T) -> Self {
            AtomicPtr { id: OnceLock::new(), v: UnsafeCell::new(p) }
        }

        pub fn load(&self, ord: Ordering) -> *mut T {
            exec::sync_op(
                "AtomicPtr::load",
                |_, _| Status::AtPoint,
                |st, tid| {
                    let id = oid(&self.id, st);
                    st.atomic_load_effects(id, tid, ord);
                    unsafe { *self.v.get() }
                },
            )
        }

        pub fn store(&self, p: *mut T, ord: Ordering) {
            exec::sync_op(
                "AtomicPtr::store",
                |_, _| Status::AtPoint,
                |st, tid| {
                    let id = oid(&self.id, st);
                    st.atomic_store_effects(id, tid, ord);
                    unsafe { *self.v.get() = p };
                },
            )
        }

        pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
            exec::sync_op(
                "AtomicPtr::swap",
                |_, _| Status::AtPoint,
                |st, tid| {
                    let id = oid(&self.id, st);
                    st.atomic_rmw_effects(id, tid, ord);
                    let slot = unsafe { &mut *self.v.get() };
                    std::mem::replace(slot, p)
                },
            )
        }

        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            exec::sync_op(
                "AtomicPtr::compare_exchange",
                |_, _| Status::AtPoint,
                |st, tid| {
                    let id = oid(&self.id, st);
                    let slot = unsafe { &mut *self.v.get() };
                    if std::ptr::eq(*slot, current) {
                        st.atomic_rmw_effects(id, tid, success);
                        Ok(std::mem::replace(slot, new))
                    } else {
                        st.atomic_load_effects(id, tid, failure);
                        Err(*slot)
                    }
                },
            )
        }

        /// Never fails spuriously under the model.
        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            self.compare_exchange(current, new, success, failure)
        }
    }
}

// ---------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------

pub struct Mutex<T> {
    id: OnceLock<ObjId>,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T> {
    m: &'a Mutex<T>,
    _not_send: PhantomData<*mut ()>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex { id: OnceLock::new(), data: UnsafeCell::new(t) }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        exec::sync_op(
            "Mutex::lock",
            |st, _| Status::Blocked(Blocked::Lock(oid(&self.id, st))),
            |st, tid| {
                let id = oid(&self.id, st);
                let m = st.mutexes.entry(id).or_default();
                m.held_by = Some(tid);
                let mc = m.clock.clone();
                st.threads[tid].clock.join(&mc);
            },
        );
        Ok(MutexGuard { m: self, _not_send: PhantomData })
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.m.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.m.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        exec::sync_op(
            "Mutex::unlock",
            |_, _| Status::AtPoint,
            |st, tid| {
                let clock = st.threads[tid].clock.clone();
                let id = oid(&self.m.id, st);
                let m = st.mutexes.entry(id).or_default();
                m.held_by = None;
                m.clock = clock;
            },
        );
    }
}

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    id: OnceLock<ObjId>,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { id: OnceLock::new() }
    }

    fn wait_inner<'a, T>(
        &self,
        g: MutexGuard<'a, T>,
        timeout_ns: Option<u64>,
    ) -> (MutexGuard<'a, T>, bool) {
        let m = g.m;
        // The wait releases the mutex itself (in `arrive`, atomically
        // with parking on the condvar); skip the guard's unlock point.
        std::mem::forget(g);
        let timed_out = exec::sync_op(
            if timeout_ns.is_some() { "Condvar::wait_timeout" } else { "Condvar::wait" },
            |st, tid| {
                let cv = oid(&self.id, st);
                let mid = oid(&m.id, st);
                let clock = st.threads[tid].clock.clone();
                let ms = st.mutexes.entry(mid).or_default();
                ms.held_by = None;
                ms.clock = clock;
                Status::Blocked(Blocked::Condvar { cv, mutex: mid, timeout_ns })
            },
            |st, tid| {
                let mid = oid(&m.id, st);
                let ms = st.mutexes.entry(mid).or_default();
                ms.held_by = Some(tid);
                let mc = ms.clock.clone();
                st.threads[tid].clock.join(&mc);
                std::mem::take(&mut st.threads[tid].timed_out)
            },
        );
        (MutexGuard { m, _not_send: PhantomData }, timed_out)
    }

    pub fn wait<'a, T>(&self, g: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        Ok(self.wait_inner(g, None).0)
    }

    pub fn wait_timeout<'a, T>(
        &self,
        g: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        let (g, timed_out) = self.wait_inner(g, Some(ns));
        Ok((g, WaitTimeoutResult(timed_out)))
    }

    fn notify(&self, all: bool) {
        exec::sync_op(
            if all { "Condvar::notify_all" } else { "Condvar::notify_one" },
            |_, _| Status::AtPoint,
            |st, tid| {
                let cvid = oid(&self.id, st);
                let clock = st.threads[tid].clock.clone();
                for th in st.threads.iter_mut() {
                    if let Status::Blocked(Blocked::Condvar { cv, mutex, .. }) = th.status {
                        if cv == cvid {
                            th.status = Status::Blocked(Blocked::Lock(mutex));
                            th.timed_out = false;
                            th.clock.join(&clock);
                            if !all {
                                break;
                            }
                        }
                    }
                }
            },
        );
    }

    pub fn notify_one(&self) {
        self.notify(false);
    }

    pub fn notify_all(&self) {
        self.notify(true);
    }
}

// ---------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------

pub mod thread {
    use super::*;

    type Slot<T> = Arc<OsMutex<Option<T>>>;

    fn spawn_erased(body: Box<dyn FnOnce() + Send>) -> Tid {
        let ctx = exec::ctx();
        exec::sync_op(
            "thread::spawn",
            |_, _| Status::AtPoint,
            move |st, ptid| exec::spawn_model(st, &ctx.exec, Some(ptid), body),
        )
    }

    fn join_model<T>(tid: Tid, slot: &Slot<T>) -> std::thread::Result<T> {
        exec::sync_op(
            "JoinHandle::join",
            |_, _| Status::Blocked(Blocked::Join(tid)),
            |st, me| {
                let c = st.threads[tid].clock.clone();
                st.threads[me].clock.join(&c);
            },
        );
        match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(v) => Ok(v),
            // Only reachable while the execution is being torn down.
            None => Err(Box::new("schedcheck: joined thread produced no value (teardown)")
                as Box<dyn std::any::Any + Send>),
        }
    }

    pub struct JoinHandle<T> {
        tid: Tid,
        slot: Slot<T>,
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            join_model(self.tid, &self.slot)
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let slot: Slot<T> = Arc::new(OsMutex::new(None));
        let s2 = Arc::clone(&slot);
        let tid = spawn_erased(Box::new(move || {
            let r = f();
            *s2.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
        }));
        JoinHandle { tid, slot }
    }

    /// Advances the virtual clock; never blocks other threads.
    pub fn sleep(d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        exec::sync_op(
            "thread::sleep",
            |_, _| Status::AtPoint,
            move |st, _| st.clock_ns = st.clock_ns.saturating_add(ns),
        );
    }

    /// A pure schedule point.
    pub fn yield_now() {
        exec::sync_op("thread::yield_now", |_, _| Status::AtPoint, |_, _| ());
    }

    pub struct Scope<'scope, 'env: 'scope> {
        children: std::cell::RefCell<Vec<Tid>>,
        _scope: PhantomData<&'scope mut &'scope ()>,
        _env: PhantomData<&'env mut &'env ()>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        tid: Tid,
        slot: Slot<T>,
        _p: PhantomData<&'scope ()>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            join_model(self.tid, &self.slot)
        }
    }

    impl<'scope> Scope<'scope, '_> {
        pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let slot: Slot<T> = Arc::new(OsMutex::new(None));
            let s2 = Arc::clone(&slot);
            let body: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                let r = f();
                *s2.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
            // SAFETY: `scope` joins every spawned child before it
            // returns — on the success path via model-level joins, and
            // on the unwind path by waiting for the children's OS
            // threads to finish unwinding — so the closure (and
            // everything it borrows from 'scope/'env) outlives its use.
            let body: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(body) };
            let tid = spawn_erased(body);
            self.children.borrow_mut().push(tid);
            ScopedJoinHandle { tid, slot, _p: PhantomData }
        }
    }

    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let sc = Scope {
            children: std::cell::RefCell::new(Vec::new()),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let res = panic::catch_unwind(AssertUnwindSafe(|| {
            let v = f(&sc);
            // Join children at the model level so their final clocks
            // flow into ours (and an unfinished child is a deadlock,
            // not a dangling borrow).
            let children = sc.children.borrow().clone();
            for tid in children {
                exec::sync_op(
                    "scope::join",
                    move |_, _| Status::Blocked(Blocked::Join(tid)),
                    move |st, me| {
                        let c = st.threads[tid].clock.clone();
                        st.threads[me].clock.join(&c);
                    },
                );
            }
            v
        }));
        match res {
            Ok(v) => v,
            Err(p) => {
                // The scope body (or a child-triggered abort) unwound.
                // Children may still borrow 'scope/'env data, so we must
                // not resume the unwind until every child OS thread has
                // finished tearing down.
                let ctx = exec::ctx();
                {
                    let mut st = ctx.exec.lock();
                    if !p.is::<exec::AbortUnwind>() && !st.abort {
                        let msg = panic_message(&p);
                        st.report(codes::PANIC, format!("scope body panicked: {msg}"));
                    }
                    st.abort = true;
                }
                ctx.exec.cv.notify_all();
                {
                    let mut st = ctx.exec.lock();
                    let children = sc.children.borrow().clone();
                    while children
                        .iter()
                        .any(|&t| !matches!(st.threads[t].status, exec::Status::Finished))
                    {
                        st = ctx.exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                }
                panic::resume_unwind(p)
            }
        }
    }

    fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "opaque panic payload".to_string()
        }
    }
}

// ---------------------------------------------------------------------
// time
// ---------------------------------------------------------------------

/// A point on the execution's virtual clock. `now()` is not a schedule
/// point: reading time cannot influence other threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant(u64);

impl Instant {
    pub fn now() -> Instant {
        exec::direct_op(|st, _, _| Instant(st.clock_ns))
    }

    pub fn elapsed(&self) -> Duration {
        Instant::now() - *self
    }

    pub fn duration_since(&self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        self.duration_since(earlier)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        Instant(self.0.saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)))
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, d: Duration) -> Instant {
        Instant(self.0.saturating_sub(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)))
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

// ---------------------------------------------------------------------
// cell
// ---------------------------------------------------------------------

pub mod cell {
    use super::*;

    /// The race-detection point: a plain shared mutable location with
    /// *no* synchronization of its own (the shadow of `Cell`, or of the
    /// unsafe "I promise this is published safely" accesses around raw
    /// nodes). Every `get`/`set` is checked against the vector clocks;
    /// two unordered accesses (one a write) are an SC201 data race.
    ///
    /// Deliberately `Sync` even though the std-mode equivalent is not:
    /// the model's job is to *detect* misuse, not prevent it.
    pub struct RaceCell<T> {
        id: OnceLock<ObjId>,
        v: UnsafeCell<T>,
    }

    unsafe impl<T: Send> Send for RaceCell<T> {}
    unsafe impl<T: Send> Sync for RaceCell<T> {}

    impl<T: Copy> RaceCell<T> {
        pub const fn new(v: T) -> Self {
            RaceCell { id: OnceLock::new(), v: UnsafeCell::new(v) }
        }

        pub fn get(&self) -> T {
            exec::direct_op(|st, tid, degraded| {
                if !degraded {
                    let id = oid(&self.id, st);
                    st.cell_read(id, tid, "RaceCell");
                }
                unsafe { *self.v.get() }
            })
        }

        pub fn set(&self, val: T) {
            exec::direct_op(|st, tid, degraded| {
                if !degraded {
                    let id = oid(&self.id, st);
                    st.cell_write(id, tid, "RaceCell");
                }
                unsafe { *self.v.get() = val };
            })
        }
    }
}

// ---------------------------------------------------------------------
// boxed — leak / double-free tracking for raw node reclamation
// ---------------------------------------------------------------------

pub mod boxed {
    use super::*;
    use crate::exec::AllocSite;

    /// `Box::into_raw` with the allocation registered in the engine.
    /// Every pointer minted here must flow back through [`from_raw`]
    /// before the execution ends, or the run is reported as SC203.
    pub fn into_raw<T>(b: Box<T>) -> *mut T {
        let p = Box::into_raw(b);
        if exec::in_model() {
            exec::direct_op(|st, _, degraded| {
                if !degraded {
                    let step = st.step;
                    st.allocs
                        .insert(p as usize, AllocSite { ty: std::any::type_name::<T>(), step });
                }
            });
        }
        p
    }

    /// `Box::from_raw` with double-free detection: a pointer that is
    /// not currently registered aborts the execution (SC203) *before*
    /// the real `Box` is reconstructed, so the checker process itself
    /// never double-frees.
    ///
    /// # Safety
    /// Same contract as [`Box::from_raw`].
    pub unsafe fn from_raw<T>(p: *mut T) -> Box<T> {
        if exec::in_model() {
            exec::direct_op(|st, _, degraded| {
                let known = st.allocs.remove(&(p as usize)).is_some();
                if !known && !degraded {
                    st.report(
                        crate::codes::SC203,
                        format!(
                            "double free: boxed::from_raw({p:p}) on a pointer not currently \
                             owned by into_raw (type {})",
                            std::any::type_name::<T>()
                        ),
                    );
                }
            });
        }
        unsafe { Box::from_raw(p) }
    }
}

//! Exploration-shape tests: the DFS must be deterministic, the
//! preemption bound must be monotone, the schedule cap must report
//! itself, and clean protocols must stay clean across every explored
//! schedule.

use std::sync::Arc;

use schedcheck::atomic::{AtomicU64, Ordering};
use schedcheck::{thread, Checker, Condvar, Mutex};

/// Two incrementers racing on an atomic: correct under every schedule.
fn counter_model() {
    let n = Arc::new(AtomicU64::new(0));
    let n2 = Arc::clone(&n);
    let t = thread::spawn(move || {
        n2.fetch_add(1, Ordering::AcqRel);
        n2.fetch_add(1, Ordering::AcqRel);
    });
    n.fetch_add(1, Ordering::AcqRel);
    n.fetch_add(1, Ordering::AcqRel);
    t.join().unwrap();
    assert_eq!(n.load(Ordering::Acquire), 4);
}

#[test]
fn single_threaded_model_has_exactly_one_schedule() {
    let out = Checker::new().preemptions(2).model(|| {
        let n = AtomicU64::new(0);
        n.fetch_add(1, Ordering::SeqCst);
        assert_eq!(n.load(Ordering::SeqCst), 1);
    });
    out.expect_clean(1);
    assert_eq!(out.schedules, 1);
    assert!(!out.capped);
}

#[test]
fn deterministic_schedule_counts() {
    let a = Checker::new().preemptions(2).max_schedules(10_000).model(counter_model);
    let b = Checker::new().preemptions(2).max_schedules(10_000).model(counter_model);
    a.expect_clean(2);
    assert_eq!(a.schedules, b.schedules, "DFS must be deterministic");
}

#[test]
fn preemption_bound_is_monotone() {
    let mut last = 0;
    for bound in 0..=3 {
        let out = Checker::new().preemptions(bound).max_schedules(50_000).model(counter_model);
        out.expect_clean(1);
        assert!(!out.capped, "bound {bound} should exhaust the tree");
        assert!(
            out.schedules >= last,
            "raising the bound to {bound} lost schedules ({} < {last})",
            out.schedules
        );
        last = out.schedules;
    }
    // Hand count: the child has 3 schedulable ops (start, 2 adds), the
    // main thread 2, so there are C(5,2) = 10 interleavings; only the
    // full alternation needs 4 preemptions, so bound 3 reaches 9.
    assert_eq!(last, 9, "bound 3 must explore exactly 9 of the 10 interleavings");
}

/// With a generous bound the DFS enumerates *exactly* the set of
/// observable interleavings — no duplicates, no gaps.
#[test]
fn exact_interleaving_count() {
    let out = Checker::new().preemptions(16).max_schedules(50_000).model(counter_model);
    out.expect_clean(1);
    assert!(!out.capped);
    assert_eq!(out.schedules, 10, "C(5,2) interleavings of 2 main ops among 5");
}

#[test]
fn schedule_cap_reports_itself() {
    let out = Checker::new().preemptions(3).max_schedules(3).model(counter_model);
    assert!(out.violation.is_none());
    assert_eq!(out.schedules, 3);
    assert!(out.capped, "hitting max_schedules must set `capped`");
}

/// A correct park/notify handshake (predicate re-checked under the
/// lock, wait atomic with the check) is clean under every schedule.
#[test]
fn correct_condvar_handshake_is_clean() {
    let out = Checker::new().preemptions(2).max_schedules(20_000).model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            *g += 1;
            drop(g);
            cv2.notify_all();
        });
        let mut g = m.lock().unwrap();
        while *g == 0 {
            g = cv.wait(g).unwrap();
        }
        assert_eq!(*g, 1);
        drop(g);
        t.join().unwrap();
    });
    out.expect_clean(3);
}

/// `scope` joins children at the model level; their effects are
/// ordered before everything after the scope.
#[test]
fn scoped_threads_join_and_synchronize() {
    let out = Checker::new().preemptions(2).max_schedules(20_000).model(|| {
        let n = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    n.fetch_add(1, Ordering::AcqRel);
                });
            }
        });
        // Relaxed is enough: scope join ordered the children's writes.
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    out.expect_clean(5);
}

/// `wait_timeout` must always be able to fire, so a notify that never
/// comes is a timeout, not a deadlock.
#[test]
fn wait_timeout_never_deadlocks() {
    let out = Checker::new().preemptions(2).max_schedules(20_000).model(|| {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock().unwrap();
        let (_g, res) = cv.wait_timeout(g, std::time::Duration::from_millis(5)).unwrap();
        assert!(res.timed_out());
    });
    out.expect_clean(1);
}

/// Virtual time: sleeps and timeouts advance `Instant`.
#[test]
fn virtual_clock_advances() {
    use schedcheck::time::{Duration, Instant};
    let out = Checker::new().preemptions(2).model(|| {
        let t0 = Instant::now();
        thread::sleep(Duration::from_millis(2));
        let t1 = Instant::now();
        assert!(t1 >= t0 + Duration::from_millis(2));
        assert!(t1.elapsed() == Duration::ZERO);
    });
    out.expect_clean(1);
}

//! Seeded known-bad primitives: every detector must fire with the
//! right SC2xx code and a replayable trace. These run in the tier-1
//! test pass (the shadow types are always compiled; only `native`'s
//! facade is cfg-gated), so the checker itself is regression-tested on
//! every build.

use std::sync::Arc;

use schedcheck::atomic::{AtomicBool, Ordering};
use schedcheck::cell::RaceCell;
use schedcheck::{boxed, codes, thread, Checker, Condvar, Mutex};

fn checker() -> Checker {
    Checker::new().preemptions(2).max_schedules(5_000)
}

// ---------------------------------------------------------------------
// SC201 — data races
// ---------------------------------------------------------------------

#[test]
fn racy_counter_is_sc201() {
    let out = checker().model(|| {
        let n = Arc::new(RaceCell::new(0u64));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.get();
            n2.set(v + 1);
        });
        let v = n.get();
        n.set(v + 1);
        t.join().unwrap();
    });
    let v = out.violation.expect("racy counter must be detected");
    assert_eq!(v.code, codes::SC201, "wrong code: {v}");
    assert!(!v.trace.is_empty(), "violation must carry a replayable trace");
}

#[test]
fn relaxed_publication_is_sc201_and_release_acquire_is_clean() {
    fn publish(store_ord: Ordering) -> schedcheck::Outcome {
        checker().model(move || {
            let flag = Arc::new(AtomicBool::new(false));
            let data = Arc::new(RaceCell::new(0u64));
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = thread::spawn(move || {
                d2.set(42);
                f2.store(true, store_ord);
            });
            if flag.load(Ordering::Acquire) {
                // Consumer believes the flag publishes `data`.
                assert_eq!(data.get(), 42);
            }
            t.join().unwrap();
        })
    }

    let racy = publish(Ordering::Relaxed);
    let v = racy.violation.expect("relaxed publication must race");
    assert_eq!(v.code, codes::SC201, "wrong code: {v}");

    let clean = publish(Ordering::Release);
    clean.expect_clean(3);
}

// ---------------------------------------------------------------------
// SC202 — lost wakeups and deadlocks
// ---------------------------------------------------------------------

/// The classic lost wakeup: the waiter re-locks between checking the
/// predicate and calling `wait`, so the notify can land in the gap.
#[test]
fn lost_wakeup_condvar_is_sc202() {
    let out = checker().model(|| {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = thread::spawn(move || {
            *m2.lock().unwrap() = true;
            cv2.notify_all();
        });
        let ready = *m.lock().unwrap();
        if !ready {
            // BUG: predicate check and wait are not atomic.
            let g = m.lock().unwrap();
            let _g = cv.wait(g).unwrap();
        }
        t.join().unwrap();
    });
    let v = out.violation.expect("lost wakeup must be detected");
    assert_eq!(v.code, codes::SC202, "wrong code: {v}");
    assert!(v.message.contains("lost wakeup"), "message should name the bug: {v}");
}

#[test]
fn ab_ba_deadlock_is_sc202() {
    let out = checker().model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        });
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
        t.join().unwrap();
    });
    let v = out.violation.expect("AB/BA deadlock must be detected");
    assert_eq!(v.code, codes::SC202, "wrong code: {v}");
}

// ---------------------------------------------------------------------
// SC203 — leaks and double frees
// ---------------------------------------------------------------------

#[test]
fn leaked_node_is_sc203() {
    let out = checker().model(|| {
        let p = boxed::into_raw(Box::new(7u64));
        // BUG: never reclaimed.
        let _ = p;
    });
    let v = out.violation.expect("leak must be detected");
    assert_eq!(v.code, codes::SC203, "wrong code: {v}");
    assert!(v.message.contains("never reclaimed"), "{v}");
}

#[test]
fn double_free_is_sc203() {
    let out = checker().model(|| {
        let p = boxed::into_raw(Box::new(1u64));
        drop(unsafe { boxed::from_raw(p) });
        // BUG: reclaimed twice (the checker aborts before the second
        // real free, so the test process itself stays sound).
        drop(unsafe { boxed::from_raw(p) });
    });
    let v = out.violation.expect("double free must be detected");
    assert_eq!(v.code, codes::SC203, "wrong code: {v}");
    assert!(v.message.contains("double free"), "{v}");
}

#[test]
fn balanced_into_from_raw_is_clean() {
    checker()
        .model(|| {
            let p = boxed::into_raw(Box::new(9u64));
            let b = unsafe { boxed::from_raw(p) };
            assert_eq!(*b, 9);
        })
        .expect_clean(1);
}

// ---------------------------------------------------------------------
// assertion failures and replay
// ---------------------------------------------------------------------

#[test]
fn model_assertion_failure_is_reported_with_schedule() {
    let out = checker().model(|| {
        let n = Arc::new(schedcheck::atomic::AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.store(1, Ordering::Release);
        });
        // BUG: asserts a value another thread may still change.
        assert_eq!(n.load(Ordering::Acquire), 0);
        t.join().unwrap();
    });
    let v = out.violation.expect("assertion failure must surface");
    assert_eq!(v.code, codes::PANIC, "wrong code: {v}");
}

#[test]
fn violation_trace_replays_to_the_same_code() {
    let model = || {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = thread::spawn(move || {
            *m2.lock().unwrap() = true;
            cv2.notify_all();
        });
        let ready = *m.lock().unwrap();
        if !ready {
            let g = m.lock().unwrap();
            let _g = cv.wait(g).unwrap();
        }
        t.join().unwrap();
    };
    let out = checker().model(model);
    let v = out.violation.expect("lost wakeup must be detected");
    let replayed = checker()
        .replay(&v.trace, model)
        .expect("replaying the trace must reproduce the violation");
    assert_eq!(replayed.code, v.code);
}

//! The framed connection protocol (DESIGN.md §16).
//!
//! Every directed link starts with a **preamble** identifying the
//! protocol and the sender, then carries a sequence of self-delimiting
//! **frames**:
//!
//! ```text
//! preamble:  [ MAGIC "MPWS" : 4B ][ VERSION : u8 ][ src rank : u32 LE ]
//! frame:     [ len : u32 LE ][ tag : u64 LE ][ bytes : u64 LE ][ payload ]
//! ```
//!
//! `len` counts everything after itself (16 header bytes + payload) and
//! is capped at [`MAX_FRAME_BYTES`], so a corrupt prefix is rejected
//! before any allocation. `tag` is the [`Tag`](mpistream::Tag) bit
//! pattern; `bytes` is the *modelled* wire size the sender declared
//! (what `MsgInfo::bytes` reports, kept distinct from the encoded
//! payload's physical size so fingerprints agree with the in-memory
//! backends). The payload is the [`Wire`](mpistream::Wire) encoding of
//! exactly one value.
//!
//! All functions here speak `io::Result`: a malformed peer produces an
//! `InvalidData` error at the reader, never a panic inside the codec.

use std::io::{self, Read, Write};

use mpistream::MAX_FRAME_BYTES;

/// Connection preamble magic.
pub const MAGIC: [u8; 4] = *b"MPWS";
/// Protocol version byte; bumped on any frame-layout change.
pub const VERSION: u8 = 1;
/// Fixed frame header past the length prefix: tag + modelled bytes.
pub const HEADER_BYTES: usize = 16;

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Write the connection preamble for a link whose sender is world rank
/// `src`.
pub fn write_preamble(w: &mut impl Write, src: usize) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(src as u32).to_le_bytes())
}

/// Read and validate a connection preamble; returns the sender's world
/// rank.
pub fn read_preamble(r: &mut impl Read) -> io::Result<usize> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(invalid(format!("bad connection magic {magic:02x?}")));
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)?;
    if ver[0] != VERSION {
        return Err(invalid(format!("protocol version {} (expected {VERSION})", ver[0])));
    }
    let mut src = [0u8; 4];
    r.read_exact(&mut src)?;
    Ok(u32::from_le_bytes(src) as usize)
}

/// Write one frame: tag, modelled byte count, encoded payload.
pub fn write_frame(w: &mut impl Write, tag: u64, bytes: u64, payload: &[u8]) -> io::Result<()> {
    let len = HEADER_BYTES + payload.len();
    if len > MAX_FRAME_BYTES {
        return Err(invalid(format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES} cap")));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&tag.to_le_bytes())?;
    w.write_all(&bytes.to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (EOF exactly at a
/// frame boundary); EOF anywhere inside a frame is an error, as is a
/// length prefix below the header size or above [`MAX_FRAME_BYTES`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u64, u64, Vec<u8>)>> {
    let mut len4 = [0u8; 4];
    // Distinguish boundary-EOF from mid-frame truncation: only a zero
    // first read is a clean shutdown.
    let first = loop {
        match r.read(&mut len4) {
            Ok(n) => break n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    };
    if first == 0 {
        return Ok(None);
    }
    r.read_exact(&mut len4[first..])?;
    let len = u32::from_le_bytes(len4) as usize;
    if !(HEADER_BYTES..=MAX_FRAME_BYTES).contains(&len) {
        return Err(invalid(format!(
            "frame length {len} outside [{HEADER_BYTES}, {MAX_FRAME_BYTES}]"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let tag = u64::from_le_bytes(buf[0..8].try_into().expect("exact slice"));
    let bytes = u64::from_le_bytes(buf[8..16].try_into().expect("exact slice"));
    let payload = buf.split_off(HEADER_BYTES);
    Ok(Some((tag, bytes, payload)))
}

/// Write a bare length-prefixed blob (the control-plane result frames).
pub fn write_blob(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(invalid(format!("blob of {} bytes exceeds the cap", payload.len())));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read a bare length-prefixed blob.
pub fn read_blob(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(invalid(format!("blob length {len} exceeds the cap")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_a_buffer() {
        let mut buf = Vec::new();
        write_preamble(&mut buf, 7).unwrap();
        write_frame(&mut buf, 0xABCD, 64, &[1, 2, 3]).unwrap();
        write_frame(&mut buf, 9, 0, &[]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_preamble(&mut r).unwrap(), 7);
        assert_eq!(read_frame(&mut r).unwrap(), Some((0xABCD, 64, vec![1, 2, 3])));
        assert_eq!(read_frame(&mut r).unwrap(), Some((9, 0, vec![])));
        assert_eq!(read_frame(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn truncated_and_oversized_frames_are_io_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 8, &[5; 10]).unwrap();
        buf.pop(); // EOF mid-frame
        assert!(read_frame(&mut &buf[..]).is_err());

        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        let tiny = 3u32.to_le_bytes(); // below the header size
        assert!(read_frame(&mut &tiny[..]).is_err());
    }

    #[test]
    fn bad_preamble_is_rejected() {
        let mut buf = Vec::new();
        write_preamble(&mut buf, 1).unwrap();
        buf[0] = b'X';
        assert!(read_preamble(&mut &buf[..]).is_err());
        let mut buf2 = Vec::new();
        write_preamble(&mut buf2, 1).unwrap();
        buf2[4] = VERSION + 1;
        assert!(read_preamble(&mut &buf2[..]).is_err());
    }
}

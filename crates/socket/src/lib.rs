//! Multi-process [`Transport`] backend: every rank a separate OS
//! process, linked by framed Unix-domain sockets.
//!
//! The paper's decoupling strategy assumes compute and data-movement
//! groups that could live on different nodes; the sim and native
//! backends still share one address space. This backend takes the same
//! stream programs across a real process boundary: payloads cross the
//! [`Wire`] codec (DESIGN.md §16), matching happens in the exact same
//! [`Mailbox`] the native backend uses (lock-free MPSC staging +
//! eventcount park, so the schedcheck models of that structure still
//! apply), and collectives are genuine network rendezvous over the
//! binomial-tree overlays from the native backend.
//!
//! ## Topology
//!
//! A [`SocketWorld::run`] in the **launcher** process re-executes the
//! current binary once per rank (`fork`/`exec` with a
//! `MPISTREAM_SOCKET_*` env handshake). Each child:
//!
//! 1. binds its data listener `dir/rank<r>.sock`, *then* greets the
//!    launcher over `dir/ctl.sock` — so once the launcher releases the
//!    world (GO), every listener is guaranteed to exist and
//!    connect-on-first-use cannot race;
//! 2. runs the body against a [`SocketRank`]; an acceptor thread plus
//!    one reader thread per inbound link decode frames into the mailbox
//!    concurrently with the body;
//! 3. ships its [`Wire`]-encoded result back on the control link and
//!    parks until the launcher's ALL_DONE — a close barrier: no rank
//!    exits while a peer might still be writing to it, so teardown
//!    never manufactures connection-reset errors.
//!
//! Exactly **one** `SocketWorld::run` per process: in a child, `run`
//! never returns (the process exits after the body), and a second run
//! with a different key panics immediately instead of forking the
//! world's children again. In `cargo test`, give each socket test its
//! own `#[test]` fn, construct the world with [`SocketWorld::for_test`],
//! and put the socket run *first* in the fn so re-executed children
//! reach it before any sim/native comparison work.

pub mod frame;

use std::collections::HashMap;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use desim::SimTime;
use mpistream::{Group, MsgInfo, Src, Tag, Transport, Wire};
use native::mailbox::{Env, Mailbox};
use native::sync::Instant;

/// Group id of the world group (matches the native backend).
const WORLD_ID: u64 = 0;
/// Group id marking metadata-only groups (never collective targets).
const META_ID: u64 = u64::MAX;
/// Internal tag namespace for collective traffic (streams use ns 2).
const NS_COLL: u8 = 3;

/// Launch-handshake environment variables.
const ENV_KEY: &str = "MPISTREAM_SOCKET_KEY";
const ENV_RANK: &str = "MPISTREAM_SOCKET_RANK";
const ENV_WORLD: &str = "MPISTREAM_SOCKET_WORLD";
const ENV_DIR: &str = "MPISTREAM_SOCKET_DIR";
const ENV_SCALE: &str = "MPISTREAM_SOCKET_SCALE";

/// Control-plane bytes.
const CTL_GO: u8 = 0x47;
const CTL_ALL_DONE: u8 = 0x44;

/// How long control-plane reads (HELLO, results) and first-use data
/// connects may take before the run is declared wedged.
const CTL_TIMEOUT: Duration = Duration::from_secs(120);
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// An ordered set of world ranks on the socket backend. Same shape as
/// the native group; the id keys the collective tag namespace and — for
/// split products — is *derived*, not registered: every member hashes
/// the same `(parent, seq, color)` triple to the same 64-bit id, so no
/// cross-process registry is needed.
#[derive(Clone, Debug)]
pub struct SocketGroup {
    id: u64,
    ranks: Arc<Vec<usize>>,
}

impl Group for SocketGroup {
    fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    fn rank_of(&self, w: usize) -> Option<usize> {
        self.ranks.iter().position(|&x| x == w)
    }

    fn meta(ranks: Vec<usize>) -> SocketGroup {
        SocketGroup { id: META_ID, ranks: Arc::new(ranks) }
    }
}

/// Deterministic split-cell id: every member of one cell computes the
/// same key locally, replacing the native backend's shared-memory
/// registry. splitmix64 finalization over the triple; the reserved
/// world/meta ids are remapped.
fn split_id(parent: u64, seq: u32, color: i64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let h =
        mix(mix(mix(parent.wrapping_add(0x9E37_79B9_7F4A_7C15)) ^ u64::from(seq)) ^ color as u64);
    match h {
        WORLD_ID => 1,
        META_ID => META_ID - 1,
        other => other,
    }
}

/// Tag for collective `seq` on the group with `id`. The id is folded
/// into both the 16-bit channel field and the sequence field: hashed
/// split ids can alias in the low 16 bits, and mixing the high bits
/// into `seq` keeps concurrently outstanding collectives of two such
/// groups on distinct tags (within one group, call order still makes
/// `seq` unique — the MPI contract).
fn coll_tag(id: u64, seq: u32) -> Tag {
    Tag::internal(NS_COLL, id as u16, seq.wrapping_add((id >> 16) as u32))
}

/// A socket world: `nprocs` ranks, each its own OS process.
pub struct SocketWorld {
    key: String,
    nprocs: usize,
    compute_scale: f64,
    /// `None`: re-exec with this process's own argv (examples/binaries).
    /// `Some`: explicit child argv (libtest filter args, see
    /// [`SocketWorld::for_test`]).
    child_args: Option<Vec<String>>,
    /// Death-tolerant mode (see [`SocketWorld::death_tolerant`]).
    tolerant: bool,
}

impl SocketWorld {
    /// A world of `nprocs` ranks keyed by `key` (any string unique to
    /// this call site within the binary). Children re-exec the current
    /// binary with its original arguments.
    pub fn new(key: &str, nprocs: usize) -> SocketWorld {
        assert!(nprocs > 0, "a world needs at least one rank");
        SocketWorld {
            key: key.to_string(),
            nprocs,
            compute_scale: 1.0,
            child_args: None,
            tolerant: false,
        }
    }

    /// A world for use inside `#[test]` fns under the libtest harness:
    /// `test_path` must be the test's full name (e.g.
    /// `"socket_quickstart_matches"`, with module prefixes if any) — it
    /// doubles as the world key and as the `--exact` filter children
    /// re-run, so each child executes only the calling test.
    pub fn for_test(test_path: &str, nprocs: usize) -> SocketWorld {
        SocketWorld {
            child_args: Some(vec![
                test_path.to_string(),
                "--exact".to_string(),
                "--nocapture".to_string(),
            ]),
            ..SocketWorld::new(test_path, nprocs)
        }
    }

    /// Wall-clock seconds slept per modelled compute second (default
    /// 1.0), forwarded to every child through the env handshake.
    pub fn with_compute_scale(mut self, scale: f64) -> SocketWorld {
        assert!(scale.is_finite() && scale >= 0.0, "compute_scale must be finite and >= 0");
        self.compute_scale = scale;
        self
    }

    /// Tolerate rank death: a rank process that vanishes mid-run (kill,
    /// abort, crash) no longer takes the world down with it. Sends to a
    /// dead peer are silently dropped (the peer is remembered as dead —
    /// no reconnect storms), readers treat a broken inbound link as EOF,
    /// and the launcher reports the dead rank as `None` instead of
    /// panicking. Pair with [`SocketWorld::run_tolerant`]; fault-free
    /// runs behave identically to the strict mode.
    pub fn death_tolerant(mut self) -> SocketWorld {
        self.tolerant = true;
        self
    }

    /// Run `body` once per rank, each in its own OS process, and return
    /// every rank's result in rank order.
    ///
    /// In the launcher this forks the children and collects their
    /// [`Wire`]-encoded results; in a child it runs `body` and **never
    /// returns** (the process exits after the close barrier). The body
    /// must be deterministic in what *type* it returns — the launcher
    /// decodes exactly `R` from every rank.
    pub fn run<R, F>(&self, body: F) -> Vec<R>
    where
        R: Wire,
        F: FnOnce(&mut SocketRank) -> R,
    {
        assert!(
            !self.tolerant,
            "a death-tolerant world must use run_tolerant: a dead rank has no result, \
             so the launcher returns Vec<Option<R>>"
        );
        self.run_tolerant(body)
            .into_iter()
            .map(|r| r.expect("strict launcher panics before recording a dead rank"))
            .collect()
    }

    /// Like [`SocketWorld::run`], but for a [death-tolerant]
    /// world: ranks that die mid-run come back as `None`, every
    /// surviving rank's result as `Some`.
    ///
    /// [death-tolerant]: SocketWorld::death_tolerant
    pub fn run_tolerant<R, F>(&self, body: F) -> Vec<Option<R>>
    where
        R: Wire,
        F: FnOnce(&mut SocketRank) -> R,
    {
        match std::env::var(ENV_KEY) {
            Err(_) => self.run_launcher(),
            Ok(k) if k == self.key => self.run_child(body),
            Ok(k) => panic!(
                "this process was launched as a rank of socket world {k:?} but reached \
                 SocketWorld::run for {:?} first — keep exactly one SocketWorld::run per \
                 test/process and put it before any other backend runs",
                self.key
            ),
        }
    }

    fn run_launcher<R: Wire>(&self) -> Vec<Option<R>> {
        let dir = scratch_dir(&self.key);
        std::fs::create_dir_all(&dir).expect("create socket scratch dir");
        let listener = UnixListener::bind(dir.join("ctl.sock")).expect("bind control socket");
        listener.set_nonblocking(true).expect("nonblocking control listener");

        let exe = std::env::current_exe().expect("resolve current executable");
        let args: Vec<String> =
            self.child_args.clone().unwrap_or_else(|| std::env::args().skip(1).collect());
        let mut guard = LaunchGuard { children: Vec::new(), dir: dir.clone() };
        for r in 0..self.nprocs {
            let child = Command::new(&exe)
                .args(&args)
                .env(ENV_KEY, &self.key)
                .env(ENV_RANK, r.to_string())
                .env(ENV_WORLD, self.nprocs.to_string())
                .env(ENV_DIR, &dir)
                .env(ENV_SCALE, self.compute_scale.to_string())
                .spawn()
                .expect("spawn rank process");
            guard.children.push(child);
        }

        // Accept one HELLO per rank; each child binds its data listener
        // before greeting, so past this loop every listener exists.
        let deadline = std::time::Instant::now() + CTL_TIMEOUT;
        let mut conns: Vec<Option<UnixStream>> = (0..self.nprocs).map(|_| None).collect();
        let mut accepted = 0;
        while accepted < self.nprocs {
            match listener.accept() {
                Ok((mut s, _)) => {
                    s.set_nonblocking(false).expect("blocking control conn");
                    s.set_read_timeout(Some(CTL_TIMEOUT)).expect("control read timeout");
                    let mut hello = [0u8; 4];
                    s.read_exact(&mut hello).expect("read HELLO");
                    let r = u32::from_le_bytes(hello) as usize;
                    assert!(r < self.nprocs, "HELLO from out-of-range rank {r}");
                    assert!(conns[r].is_none(), "duplicate HELLO from rank {r}");
                    conns[r] = Some(s);
                    accepted += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    guard.check_alive();
                    assert!(
                        std::time::Instant::now() < deadline,
                        "socket world {:?}: timed out waiting for rank handshakes \
                         ({accepted}/{} arrived)",
                        self.key,
                        self.nprocs
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("control accept failed: {e}"),
            }
        }
        let mut conns: Vec<UnixStream> = conns.into_iter().map(|c| c.expect("all ranks")).collect();

        for c in &mut conns {
            c.write_all(&[CTL_GO]).expect("send GO");
        }
        // Collect results in rank order, then release everyone at once:
        // the ALL_DONE close barrier keeps ranks alive until no peer can
        // still be writing to them.
        let mut results = Vec::with_capacity(self.nprocs);
        for (r, c) in conns.iter_mut().enumerate() {
            match frame::read_blob(c) {
                Ok(blob) => results.push(Some(R::from_frame(&blob).unwrap_or_else(|e| {
                    panic!("rank {r} returned a malformed result frame: {e}")
                }))),
                Err(_) if self.tolerant => results.push(None),
                Err(e) => panic!("rank {r} died before returning a result: {e}"),
            }
        }
        for (r, c) in conns.iter_mut().enumerate() {
            // A dead rank's control link is gone; releasing it is a no-op.
            let released = c.write_all(&[CTL_ALL_DONE]);
            if results[r].is_some() {
                released.expect("send ALL_DONE");
            }
        }
        for (r, mut child) in guard.children.drain(..).enumerate() {
            let status = child.wait().expect("wait for rank process");
            if results[r].is_some() {
                assert!(status.success(), "rank {r} exited with {status}");
            }
        }
        drop(guard); // removes the scratch dir
        results
    }

    fn run_child<R, F>(&self, body: F) -> !
    where
        R: Wire,
        F: FnOnce(&mut SocketRank) -> R,
    {
        let rank: usize = env_parsed(ENV_RANK);
        let nprocs: usize = env_parsed(ENV_WORLD);
        assert_eq!(
            nprocs, self.nprocs,
            "world size mismatch: launched with {nprocs} ranks, call site says {}",
            self.nprocs
        );
        let dir = PathBuf::from(std::env::var(ENV_DIR).expect("socket dir env"));
        let compute_scale: f64 = env_parsed(ENV_SCALE);

        // Data listener first, HELLO second — the ordering GO relies on.
        let mailbox = Arc::new(Mailbox::new());
        let listener = UnixListener::bind(rank_sock(&dir, rank)).expect("bind data listener");
        let mut ctl =
            connect_retry(&dir.join("ctl.sock"), CONNECT_TIMEOUT).expect("connect control socket");
        ctl.set_read_timeout(Some(CTL_TIMEOUT)).expect("control read timeout");
        ctl.write_all(&(rank as u32).to_le_bytes()).expect("send HELLO");
        let mut go = [0u8; 1];
        ctl.read_exact(&mut go).expect("read GO");
        assert_eq!(go[0], CTL_GO, "unexpected control byte");

        {
            let mailbox = Arc::clone(&mailbox);
            let tolerant = self.tolerant;
            std::thread::spawn(move || acceptor_loop(listener, mailbox, tolerant));
        }

        let mut sr = SocketRank {
            rank,
            nprocs,
            epoch: Instant::now(),
            compute_scale,
            dir,
            mailbox,
            links: (0..nprocs).map(|_| None).collect(),
            coll_seq: HashMap::new(),
            mail_seen: 0,
            next_channel: 0,
            tolerant: self.tolerant,
            dead: vec![false; nprocs],
        };
        let result = body(&mut sr);
        frame::write_blob(&mut ctl, &result.to_frame()).expect("ship result");
        let mut done = [0u8; 1];
        ctl.read_exact(&mut done).expect("read ALL_DONE");
        assert_eq!(done[0], CTL_ALL_DONE, "unexpected control byte");
        // Reader/acceptor threads die with the process; the close
        // barrier above guarantees no peer still needs this rank.
        std::process::exit(0);
    }
}

/// Kills any still-running children and removes the scratch directory —
/// on the success path the children vec has been drained first.
struct LaunchGuard {
    children: Vec<Child>,
    dir: PathBuf,
}

impl LaunchGuard {
    /// Fail fast if a child already died during the handshake.
    fn check_alive(&mut self) {
        for (r, c) in self.children.iter_mut().enumerate() {
            if let Ok(Some(status)) = c.try_wait() {
                if !status.success() {
                    panic!("rank {r} exited with {status} during the handshake");
                }
            }
        }
    }
}

impl Drop for LaunchGuard {
    fn drop(&mut self) {
        for c in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn env_parsed<T: std::str::FromStr>(name: &str) -> T
where
    T::Err: std::fmt::Debug,
{
    std::env::var(name)
        .unwrap_or_else(|_| panic!("{name} not set in rank process"))
        .parse()
        .unwrap_or_else(|e| panic!("{name} unparseable: {e:?}"))
}

fn rank_sock(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("rank{rank}.sock"))
}

/// Per-run scratch directory under the system temp dir. Keyed by pid +
/// a process-wide counter (several sequential worlds in one launcher) +
/// a hash of the world key, kept short for the Unix socket path limit.
fn scratch_dir(key: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    std::env::temp_dir().join(format!("mpws-{}-{n}-{h:08x}", std::process::id()))
}

fn connect_retry(path: &Path, total: Duration) -> std::io::Result<UnixStream> {
    let deadline = std::time::Instant::now() + total;
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Accept inbound links forever (until process exit), one reader thread
/// per connection. Readers assemble frames independently of the
/// consumer, so a recv deadline expiring while a frame is in flight
/// never corrupts the link — the frame simply lands in the mailbox when
/// complete.
fn acceptor_loop(listener: UnixListener, mailbox: Arc<Mailbox>, tolerant: bool) {
    for conn in listener.incoming() {
        let mut stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let mailbox = Arc::clone(&mailbox);
        std::thread::spawn(move || {
            let src = match frame::read_preamble(&mut stream) {
                Ok(src) => src,
                Err(_) if tolerant => return, // peer died right after dialling
                Err(e) => panic!("connection preamble: {e}"),
            };
            reader_loop(stream, src, &mailbox, tolerant);
        });
    }
}

/// Decode frames from one inbound link into the mailbox until clean
/// EOF. Malformed traffic from a peer is fatal to this rank (the peers
/// are our own world; garbage means a protocol bug, not hostile input —
/// the codec itself reports it as a typed error first) — except under
/// `tolerant`, where a broken link (the peer process died mid-frame) is
/// treated as end-of-stream.
pub fn reader_loop(mut stream: UnixStream, src: usize, mailbox: &Mailbox, tolerant: bool) {
    loop {
        match frame::read_frame(&mut stream) {
            Ok(Some((tag, bytes, payload))) => {
                mailbox.push(Env { src, tag: Tag(tag), bytes, payload: Box::new(payload) });
            }
            Ok(None) => break,
            Err(_) if tolerant => break,
            Err(e) => panic!("reader for link from rank {src}: {e}"),
        }
    }
}

/// One socket rank: the per-process handle [`SocketWorld::run`] passes
/// to the body. Implements [`Transport`], so the whole stream runtime —
/// channels, streams, combiners, `run_decoupled` — works against it.
pub struct SocketRank {
    rank: usize,
    nprocs: usize,
    epoch: Instant,
    compute_scale: f64,
    dir: PathBuf,
    mailbox: Arc<Mailbox>,
    /// Outbound links, connected on first use (always succeeds: every
    /// listener was bound before GO).
    links: Vec<Option<UnixStream>>,
    /// Per-group collective sequence numbers (identical call order on a
    /// group keeps them in agreement, as MPI requires).
    coll_seq: HashMap<u64, u32>,
    /// Mailbox version at the last `wait_for_mail` return (see the
    /// native backend for the polling-round protocol).
    mail_seen: u64,
    /// Per-process channel counter; world-unique ids without shared
    /// memory: `counter * nprocs + rank` gives each rank a disjoint
    /// arithmetic progression.
    next_channel: u32,
    /// Death-tolerant mode (see [`SocketWorld::death_tolerant`]).
    tolerant: bool,
    /// Peers observed dead (tolerant mode only): once a connect or a
    /// write to a rank fails it stays marked, so later sends drop
    /// immediately instead of re-dialling a corpse.
    dead: Vec<bool>,
}

impl SocketRank {
    /// Connect-on-first-use outbound link; `None` means `dst` is dead
    /// (only possible in death-tolerant mode — strict worlds panic).
    fn link(&mut self, dst: usize) -> Option<&mut UnixStream> {
        if self.dead[dst] {
            return None;
        }
        if self.links[dst].is_none() {
            // Every listener was bound before GO, so in tolerant mode a
            // refused connect means the peer is gone — fail on the first
            // attempt instead of retrying against a corpse for seconds.
            let connected = if self.tolerant {
                UnixStream::connect(rank_sock(&self.dir, dst))
            } else {
                connect_retry(&rank_sock(&self.dir, dst), CONNECT_TIMEOUT)
            };
            let mut s = match connected {
                Ok(s) => s,
                Err(_) if self.tolerant => {
                    self.dead[dst] = true;
                    return None;
                }
                Err(e) => panic!("rank {}: connect to rank {dst}: {e}", self.rank),
            };
            match frame::write_preamble(&mut s, self.rank) {
                Ok(()) => {}
                Err(_) if self.tolerant => {
                    self.dead[dst] = true;
                    return None;
                }
                Err(e) => panic!("rank {}: preamble to rank {dst}: {e}", self.rank),
            }
            self.links[dst] = Some(s);
        }
        self.links[dst].as_mut()
    }

    fn next_seq(&mut self, group: &SocketGroup) -> u32 {
        assert!(group.id != META_ID, "collective on a metadata-only group");
        let seq = self.coll_seq.entry(group.id).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }

    fn my_group_rank(&self, group: &SocketGroup) -> usize {
        group.rank_of(self.rank).expect("collective on a group we are not in")
    }

    /// Reduce up to virtual rank 0 over the binomial tree (children
    /// ascending — the deterministic fold order); `Some(total)` at the
    /// root, `None` elsewhere. For floats the tree-shaped fold order may
    /// differ bitwise from another backend's (DESIGN.md §11), and across
    /// processes there is no shared memory to paper over it.
    fn tree_reduce<T: Wire + Send + 'static>(
        &mut self,
        tree: &Overlay<'_>,
        bytes: u64,
        value: T,
        op: &impl Fn(&mut T, &T),
    ) -> Option<T> {
        let mut acc = value;
        for c in tree.children(tree.my_v) {
            let (child, _info) = self.recv::<T>(Src::Rank((tree.to_world)(c)), tree.tag);
            op(&mut acc, &child);
        }
        if tree.my_v == 0 {
            Some(acc)
        } else {
            self.send((tree.to_world)(Overlay::parent(tree.my_v)), tree.tag, bytes, acc);
            None
        }
    }

    /// Broadcast down from virtual rank 0. Safe on the same tag as a
    /// preceding reduce over the same overlay: between any rank pair the
    /// two phases flow in opposite directions, so directed receives
    /// cannot cross-match.
    fn tree_bcast<T: Wire + Clone + Send + 'static>(
        &mut self,
        tree: &Overlay<'_>,
        bytes: u64,
        value: Option<T>,
    ) -> T {
        let val = if tree.my_v == 0 {
            value.expect("tree root supplies the broadcast value")
        } else {
            self.recv::<T>(Src::Rank((tree.to_world)(Overlay::parent(tree.my_v))), tree.tag).0
        };
        for c in tree.children(tree.my_v) {
            self.send((tree.to_world)(c), tree.tag, bytes, val.clone());
        }
        val
    }

    fn deadline_instant(&self, deadline: SimTime) -> Instant {
        self.epoch + Duration::from_nanos(deadline.0)
    }
}

/// One collective's geometry: always the binomial tree here — there is
/// no shared-memory star shortcut worth taking when every hop is a real
/// socket write, and `O(log n)` hops is the shape the paper's
/// aggregation analysis assumes.
struct Overlay<'a> {
    tag: Tag,
    to_world: &'a dyn Fn(usize) -> usize,
    my_v: usize,
    size: usize,
}

impl Overlay<'_> {
    /// Children of virtual rank `v`, ascending: `v + 2^k` for every
    /// `2^k` below `v`'s lowest set bit that stays inside the group.
    fn children(&self, v: usize) -> Vec<usize> {
        let size = self.size;
        let lsb = if v == 0 { usize::MAX } else { v & v.wrapping_neg() };
        std::iter::successors(Some(1usize), |k| k.checked_mul(2))
            .take_while(move |&k| k < lsb && v + k < size)
            .map(move |k| v + k)
            .collect()
    }

    /// Parent of virtual rank `v != 0`: clear the lowest set bit.
    fn parent(v: usize) -> usize {
        v & (v - 1)
    }
}

impl Transport for SocketRank {
    type Group = SocketGroup;

    fn world_rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.nprocs
    }

    fn world_group(&self) -> SocketGroup {
        SocketGroup { id: WORLD_ID, ranks: Arc::new((0..self.nprocs).collect()) }
    }

    fn now(&self) -> SimTime {
        SimTime(u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn compute(&mut self, secs: f64) {
        let scaled = secs * self.compute_scale;
        if scaled.is_finite() && scaled > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(scaled));
        }
    }

    fn send<T: Wire + Send + 'static>(&mut self, dst: usize, tag: Tag, bytes: u64, value: T) {
        assert!(dst < self.nprocs, "send to out-of-range rank {dst}");
        let payload = value.to_frame();
        if dst == self.rank {
            // Self-sends still cross the codec — one uniform path, so a
            // payload that cannot round-trip fails loudly everywhere.
            self.mailbox.push(Env { src: self.rank, tag, bytes, payload: Box::new(payload) });
            return;
        }
        let me = self.rank;
        let Some(link) = self.link(dst) else {
            return; // tolerant mode: dst is dead, the send is dropped
        };
        if let Err(e) = frame::write_frame(link, tag.0, bytes, &payload) {
            if self.tolerant {
                self.links[dst] = None;
                self.dead[dst] = true;
            } else {
                panic!("rank {me}: send to rank {dst}: {e}");
            }
        }
    }

    fn recv<T: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> (T, MsgInfo) {
        let env = self.mailbox.take(src, tag);
        unpack(self.rank, env)
    }

    fn try_recv<T: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> Option<(T, MsgInfo)> {
        let env = self.mailbox.try_take(src, tag)?;
        Some(unpack(self.rank, env))
    }

    fn recv_deadline<T: Wire + Send + 'static>(
        &mut self,
        src: Src,
        tag: Tag,
        deadline: SimTime,
    ) -> Option<(T, MsgInfo)> {
        let until = self.deadline_instant(deadline);
        let env = self.mailbox.take_deadline(src, tag, until)?;
        Some(unpack(self.rank, env))
    }

    fn probe(&mut self, src: Src, tag: Tag) -> Option<MsgInfo> {
        self.mailbox.probe(src, tag)
    }

    fn wait_for_mail(&mut self) {
        self.mail_seen = self.mailbox.wait_change(self.mail_seen);
    }

    fn barrier(&mut self, group: &SocketGroup) {
        let seq = self.next_seq(group);
        let tag = coll_tag(group.id, seq);
        let my_gr = self.my_group_rank(group);
        let size = group.size();
        let ranks = Arc::clone(&group.ranks);
        let to_world = move |v: usize| ranks[v];
        let tree = Overlay { tag, to_world: &to_world, my_v: my_gr, size };
        let done = self.tree_reduce(&tree, 1, (), &|_, _| {});
        let () = self.tree_bcast(&tree, 1, done);
    }

    fn allreduce<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &SocketGroup,
        bytes: u64,
        value: T,
        op: impl Fn(&mut T, &T),
    ) -> T {
        let seq = self.next_seq(group);
        let tag = coll_tag(group.id, seq);
        let my_gr = self.my_group_rank(group);
        let size = group.size();
        let ranks = Arc::clone(&group.ranks);
        let to_world = move |v: usize| ranks[v];
        let tree = Overlay { tag, to_world: &to_world, my_v: my_gr, size };
        let total = self.tree_reduce(&tree, bytes, value, &op);
        self.tree_bcast(&tree, bytes, total)
    }

    fn allgatherv<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &SocketGroup,
        bytes: u64,
        value: T,
    ) -> Vec<T> {
        let seq = self.next_seq(group);
        let tag = coll_tag(group.id, seq);
        let my_gr = self.my_group_rank(group);
        let size = group.size();
        let ranks = Arc::clone(&group.ranks);
        let to_world = move |v: usize| ranks[v];
        let tree = Overlay { tag, to_world: &to_world, my_v: my_gr, size };
        // Child `v + 2^k` owns the contiguous group-rank range
        // [v + 2^k, v + 2^(k+1)) clipped to size, so appending children
        // ascending keeps the accumulator group-rank-ordered.
        let mut acc: Vec<T> = vec![value];
        for c in tree.children(my_gr) {
            let (mut sub, _info) = self.recv::<Vec<T>>(Src::Rank((tree.to_world)(c)), tag);
            acc.append(&mut sub);
        }
        let gathered = if my_gr == 0 {
            Some(acc)
        } else {
            let n = acc.len() as u64;
            self.send((tree.to_world)(Overlay::parent(my_gr)), tag, bytes * n, acc);
            None
        };
        self.tree_bcast(&tree, bytes * size as u64, gathered)
    }

    fn bcast<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &SocketGroup,
        root: usize,
        bytes: u64,
        value: Option<T>,
    ) -> T {
        let seq = self.next_seq(group);
        let tag = coll_tag(group.id, seq);
        let my_gr = self.my_group_rank(group);
        let size = group.size();
        let ranks = Arc::clone(&group.ranks);
        assert!(root < size, "bcast root {root} out of range for group of {size}");
        // Rotate the overlay so the root sits at virtual rank 0.
        let my_v = (my_gr + size - root) % size;
        let to_world = move |v: usize| ranks[(v + root) % size];
        if my_v == 0 {
            assert!(value.is_some(), "root supplied the broadcast value");
        }
        let tree = Overlay { tag, to_world: &to_world, my_v, size };
        self.tree_bcast(&tree, bytes, value)
    }

    fn split(&mut self, group: &SocketGroup, color: Option<i64>, key: i64) -> Option<SocketGroup> {
        // Gather the Option itself — no sentinel, so every i64 is a
        // legal color, distinct from non-participation.
        let mut entries = self.allgatherv(group, 24, (color, key, self.rank));
        let seq = self.coll_seq[&group.id] - 1; // the allgatherv's seq
        let my_color = color?;
        entries.retain(|&(c, _, _)| c == Some(my_color));
        entries.sort_unstable_by_key(|&(_, k, w)| (k, w));
        let members: Vec<usize> = entries.iter().map(|&(_, _, w)| w).collect();
        // Every member of the cell hashes the same triple — agreement
        // without the native backend's shared registry.
        let id = split_id(group.id, seq, my_color);
        Some(SocketGroup { id, ranks: Arc::new(members) })
    }

    fn alloc_channel_id(&mut self) -> u16 {
        let id = self.next_channel as usize * self.nprocs + self.rank;
        self.next_channel += 1;
        u16::try_from(id).expect("too many channels")
    }
}

fn unpack<T: Wire>(rank: usize, env: Env) -> (T, MsgInfo) {
    let info = MsgInfo { src: env.src, tag: env.tag, bytes: env.bytes };
    let buf = env.payload.downcast::<Vec<u8>>().unwrap_or_else(|_| {
        panic!("rank {rank}: non-frame payload in a socket mailbox (tag {:?})", env.tag)
    });
    match T::from_frame(&buf) {
        Ok(v) => (v, info),
        Err(e) => panic!(
            "rank {rank}: malformed {} frame from rank {} under tag {:?}: {e}",
            std::any::type_name::<T>(),
            info.src,
            env.tag
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ids_dodge_the_reserved_values() {
        assert_ne!(split_id(0, 0, 0), WORLD_ID);
        assert_ne!(split_id(0, 0, 0), META_ID);
        // Distinct cells of one split get distinct ids.
        assert_ne!(split_id(0, 3, 0), split_id(0, 3, 1));
    }

    #[test]
    fn overlay_matches_the_binomial_recurrence() {
        let noop = |v: usize| v;
        let t = Overlay { tag: Tag::user(0), to_world: &noop, my_v: 0, size: 6 };
        assert_eq!(t.children(0), vec![1, 2, 4]);
        assert_eq!(t.children(2), vec![3]);
        assert_eq!(t.children(4), vec![5]);
        assert_eq!(Overlay::parent(5), 4);
        assert_eq!(Overlay::parent(3), 2);
        assert_eq!(Overlay::parent(1), 0);
    }

    // Real multi-process smokes: each spawns its world as child
    // processes re-running this exact test under --exact. One
    // SocketWorld::run per test, placed first.

    #[test]
    fn ping_pong_round_trips_across_processes() {
        let totals =
            SocketWorld::for_test("tests::ping_pong_round_trips_across_processes", 2).run(|rank| {
                let t = Tag::user(1);
                if rank.world_rank() == 0 {
                    rank.send(1, t, 8, 41u64);
                    let (v, info) = rank.recv::<u64>(Src::Rank(1), t);
                    assert_eq!(info.src, 1);
                    v
                } else {
                    let (v, _) = rank.recv::<u64>(Src::Any, t);
                    rank.send(0, t, 8, v + 1);
                    v
                }
            });
        assert_eq!(totals, vec![42, 41]);
    }

    #[test]
    fn collectives_agree_across_processes() {
        let reports =
            SocketWorld::for_test("tests::collectives_agree_across_processes", 5).run(|rank| {
                let world = rank.world_group();
                let sum = rank.allreduce(&world, 8, rank.world_rank() as u64, |a, b| *a += b);
                let all = rank.allgatherv(&world, 8, rank.world_rank());
                let from_root = rank.bcast(&world, 3, 8, (rank.world_rank() == 3).then_some(99u32));
                rank.barrier(&world);
                // Split into parity cells, reduce within each.
                let parity = (rank.world_rank() % 2) as i64;
                let cell = rank.split(&world, Some(parity), rank.world_rank() as i64).unwrap();
                let cell_sum = rank.allreduce(&cell, 8, rank.world_rank() as u64, |a, b| *a += b);
                (sum, all, from_root, cell_sum)
            });
        for (r, (sum, all, from_root, cell_sum)) in reports.into_iter().enumerate() {
            assert_eq!(sum, 10);
            assert_eq!(all, (0..5).collect::<Vec<_>>());
            assert_eq!(from_root, 99);
            assert_eq!(cell_sum, if r % 2 == 0 { 6 } else { 4 });
        }
    }
}

//! streamcheck — a decoupling-correctness analyzer for mpistream programs.
//!
//! Decoupling an HPC application into process groups connected by stream
//! channels (the paper's §II strategy) trades one global communicator for
//! a topology of producer/consumer flows — and introduces new ways to be
//! wrong: partitions that miss ranks, credit windows that deadlock on a
//! cycle, termination markers that never reach a consumer, keyed routings
//! with holes. This crate checks those properties in two complementary
//! passes:
//!
//! * **Static** — declare the topology as plain data ([`Topology`],
//!   [`GroupDecl`], [`ChannelDecl`]) and run [`check`], which produces a
//!   [`Report`] of findings `SC001`–`SC005` and, when the dataflow graph
//!   is acyclic and error-free, certifies the pipeline deadlock-free.
//! * **Dynamic** — build `mpisim`/`mpistream` with the `check` feature and
//!   opt in with `World::with_check()`: a vector-clock happens-before
//!   sanitizer flags wildcard-receive races (`SC101`), orphan messages at
//!   finalize (`SC102`) and credit-protocol violations (`SC103`), and its
//!   credit table is appended to `desim` deadlock reports.
//!
//! ```
//! use streamcheck::{check, ChannelDecl, GroupDecl, Topology};
//! use mpistream::ChannelConfig;
//!
//! let topo = Topology::new(4)
//!     .group(GroupDecl::new("compute", vec![0, 1, 2]))
//!     .group(GroupDecl::new("analysis", vec![3]))
//!     .channel(ChannelDecl::new(
//!         "results",
//!         vec![0, 1, 2],
//!         vec![3],
//!         ChannelConfig { element_bytes: 1 << 20, ..ChannelConfig::default() },
//!     ));
//! let report = check(&topo);
//! assert!(report.is_clean());
//! assert!(report.certified_deadlock_free);
//! ```

pub mod lint;
pub mod topology;

pub use lint::{check, Finding, Report, Severity};
pub use topology::{ChannelDecl, Drain, GroupDecl, Routing, Topology};

/// The dynamic sanitizer's report type, re-exported so tooling can consume
/// both passes' findings from one place.
pub use mpisim::SanReport;

//! The static pass: five lints over a [`Topology`], producing a
//! structured, machine-readable [`Report`].
//!
//! Lint catalogue (see DESIGN.md §9 for the full write-up):
//!
//! | code  | checks |
//! |-------|--------|
//! | SC001 | group-partition validity: α-groups non-empty, pairwise disjoint, covering the world |
//! | SC002 | dataflow cycles: a cycle whose every edge is credit-bounded can fill and deadlock (error); a cycle with an unbounded edge cannot credit-deadlock but is not memory-bounded (info) |
//! | SC003 | termination reachability: every consumer eventually hears `Term` from every producer under the drain discipline |
//! | SC004 | routing totality: keyed maps cover their key domain and stay in range; endpoint sets non-empty |
//! | SC005 | config validity: zero granularity / aggregation / credit window / timeout, window below one batch, t/2t patience hierarchy |
//! | SC006 | batched credit flush fits the window's stall margin: `credit_batch ≤ credits - aggregation + 1`, or a stalled producer waits forever for a flush that never triggers |
//! | SC007 | replica-group sanity: the consumer list carries `replicas + 1` ranks, replication patience sits above the t/2t hierarchy, a replicated channel routes `Static` (one logical consumer), and a group too small to out-vote one death is flagged |
//!
//! The dynamic sanitizer's findings use the same namespace one hundred up:
//! SC101 wildcard race, SC102 orphan message, SC103 credit overrun (see
//! `mpisim::check`); the native backend's model checker uses two hundred
//! up: SC201 data race, SC202 deadlock/lost wakeup, SC203 leak/double
//! free (see `schedcheck` and DESIGN.md §14).

use std::collections::{BTreeSet, HashMap, HashSet};

use mpistream::ConfigError;

use crate::topology::{ChannelDecl, Drain, Routing, Topology};

/// How bad a finding is. Only [`Severity::Error`] findings make a report
/// unclean: warnings are completing-but-lossy behaviours, infos are
/// properties worth knowing (e.g. a benign request/reply cycle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(severity_name(*self))
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Catalogue code (`SC001`..`SC007`).
    pub code: &'static str,
    pub severity: Severity,
    /// What the finding is about — a channel or group name, or `topology`.
    pub subject: String,
    pub message: String,
}

/// The static pass's result.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// True when the dataflow graph is acyclic and no error was found: the
    /// pipeline cannot deadlock on stream flow control (§II-D), whatever
    /// the timing.
    pub certified_deadlock_free: bool,
}

impl Report {
    /// No error-severity findings (warnings and infos allowed).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Error)
    }

    /// Human-readable rendering.
    pub fn to_text(&self) -> String {
        let errors = self.errors().count();
        let warnings = self.findings.iter().filter(|f| f.severity == Severity::Warning).count();
        let cert = if self.certified_deadlock_free {
            "certified deadlock-free"
        } else {
            "NOT certified deadlock-free"
        };
        let mut out = if self.findings.is_empty() {
            format!("streamcheck: clean — {cert}\n")
        } else {
            format!(
                "streamcheck: {} finding(s), {errors} error(s), {warnings} warning(s) — {cert}\n",
                self.findings.len()
            )
        };
        let mut sorted: Vec<&Finding> = self.findings.iter().collect();
        sorted.sort_by_key(|f| std::cmp::Reverse(f.severity));
        for f in sorted {
            out.push_str(&format!(
                "  {:7} {} [{}] {}\n",
                severity_name(f.severity),
                f.code,
                f.subject,
                f.message
            ));
        }
        out
    }

    /// Machine-readable rendering (one JSON object).
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"code\":\"{}\",\"severity\":\"{}\",\"subject\":\"{}\",\"message\":\"{}\"}}",
                    f.code,
                    severity_name(f.severity),
                    json_escape(&f.subject),
                    json_escape(&f.message)
                )
            })
            .collect();
        format!(
            "{{\"certified_deadlock_free\":{},\"errors\":{},\"findings\":[{}]}}",
            self.certified_deadlock_free,
            self.errors().count(),
            findings.join(",")
        )
    }
}

fn severity_name(s: Severity) -> &'static str {
    match s {
        Severity::Info => "info",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Run every lint over `topo`.
pub fn check(topo: &Topology) -> Report {
    let mut findings = Vec::new();
    lint_groups(topo, &mut findings);
    for ch in &topo.channels {
        lint_config(ch, &mut findings);
        lint_credit_batch(ch, &mut findings);
        lint_replication(ch, &mut findings);
        lint_routing(ch, &mut findings);
        lint_termination(ch, &mut findings);
    }
    let acyclic = lint_cycles(topo, &mut findings);
    let clean = !findings.iter().any(|f| f.severity == Severity::Error);
    Report { findings, certified_deadlock_free: acyclic && clean }
}

/// SC001: the α-partition must be made of non-empty, pairwise-disjoint
/// groups covering the world (§II-A: *every* process belongs to exactly
/// one group).
fn lint_groups(topo: &Topology, findings: &mut Vec<Finding>) {
    if topo.groups.is_empty() {
        return; // channel-only declaration: nothing to check
    }
    let mut owner: HashMap<usize, &str> = HashMap::new();
    for g in &topo.groups {
        if g.ranks.is_empty() {
            findings.push(Finding {
                code: "SC001",
                severity: Severity::Error,
                subject: g.name.clone(),
                message: "group is empty: a group must own at least one process".into(),
            });
        }
        let mut seen = HashSet::new();
        for &r in &g.ranks {
            if r >= topo.world {
                findings.push(Finding {
                    code: "SC001",
                    severity: Severity::Error,
                    subject: g.name.clone(),
                    message: format!(
                        "rank {r} is out of range for a world of {} ranks",
                        topo.world
                    ),
                });
                continue;
            }
            if !seen.insert(r) {
                continue; // duplicate inside one group: one report via overlap below
            }
            if let Some(other) = owner.insert(r, &g.name) {
                findings.push(Finding {
                    code: "SC001",
                    severity: Severity::Error,
                    subject: g.name.clone(),
                    message: format!(
                        "rank {r} is already owned by group `{other}`: groups must be disjoint"
                    ),
                });
            }
        }
    }
    let missing: Vec<usize> = (0..topo.world).filter(|r| !owner.contains_key(r)).collect();
    if !missing.is_empty() {
        findings.push(Finding {
            code: "SC001",
            severity: Severity::Error,
            subject: "topology".into(),
            message: format!(
                "{} rank(s) belong to no group (first: rank {}): the partition must cover \
                 the world",
                missing.len(),
                missing[0]
            ),
        });
    }
}

/// SC005: per-channel configuration lints — the typed construction-time
/// checks plus the t/2t failure-timeout hierarchy.
fn lint_config(ch: &ChannelDecl, findings: &mut Vec<Finding>) {
    if let Err(e) = ch.config.validate() {
        let message = match e {
            ConfigError::ZeroGranularity => {
                "element_bytes is 0: zero stream granularity".to_string()
            }
            ConfigError::ZeroAggregation => "aggregation is 0".to_string(),
            ConfigError::ZeroCreditWindow => {
                "credit window is 0: the first send can never be admitted".to_string()
            }
            ConfigError::CreditWindowBelowBatch { credits, aggregation } => format!(
                "credit window ({credits}) is smaller than one aggregated batch \
                 ({aggregation} elements): the producer stalls permanently"
            ),
            ConfigError::ZeroFailureTimeout => {
                "failure_timeout is 0: every peer is declared dead instantly".to_string()
            }
            ConfigError::ZeroCreditBatch => {
                "credit_batch is 0: accumulated credit is never acknowledged".to_string()
            }
            // Promoted to its own lint (SC006, `lint_credit_batch`): it
            // is a relation between tuning knobs, not a degenerate value,
            // and is checked from the fields directly so it fires even
            // when validate() short-circuits on an earlier error.
            ConfigError::CreditBatchAboveWindow { .. } => return,
            // Replica-group sanity has its own lint (SC007,
            // `lint_replication`), checked from the fields directly for
            // the same short-circuit reason.
            ConfigError::ReplicationNeedsStaticRoute
            | ConfigError::ReplicationWithoutTimeout
            | ConfigError::ZeroReplicationPatience => return,
        };
        findings.push(Finding {
            code: "SC005",
            severity: Severity::Error,
            subject: ch.name.clone(),
            message,
        });
    }
    if let (Some(t), Some(p)) = (ch.config.failure_timeout, ch.consumer_patience) {
        if p < t + t {
            findings.push(Finding {
                code: "SC005",
                severity: Severity::Error,
                subject: ch.name.clone(),
                message: format!(
                    "consumer patience ({p}) is below twice the producer timeout ({t}): a \
                     producer legitimately blocked on a full credit window for up to {t} \
                     would be declared dead (t/2t hierarchy)"
                ),
            });
        }
    }
}

/// SC006: the batched credit flush must fit inside the credit window's
/// stall margin. A producer can stall with as few as
/// `credits - aggregation + 1` elements outstanding, all of which the
/// consumer may already have processed; if the accumulation threshold
/// `credit_batch` lies above that, the acknowledgement never flushes and
/// the stream deadlocks. Unlike the SC005 value checks this is a
/// relation between three healthy-looking knobs, so it gets its own
/// code — and it is computed from the fields directly (not from
/// `validate()`, which short-circuits on the first error), so topology
/// extraction flags it even in configs with other defects.
fn lint_credit_batch(ch: &ChannelDecl, findings: &mut Vec<Finding>) {
    let Some(credits) = ch.config.credits else {
        return; // no credit flow at all: credit_batch is ignored
    };
    let (batch, aggregation) = (ch.config.credit_batch, ch.config.aggregation);
    if credits == 0 || aggregation == 0 || batch == 0 || credits < aggregation {
        return; // degenerate values are SC005's findings, not a relation
    }
    let margin = credits - aggregation + 1;
    if batch > margin {
        findings.push(Finding {
            code: "SC006",
            severity: Severity::Error,
            subject: ch.name.clone(),
            message: format!(
                "credit_batch ({batch}) exceeds the credit window's stall margin \
                 ({credits} - {aggregation} + 1 = {margin}): a producer blocked on the \
                 window could wait forever for a credit flush"
            ),
        });
    }
}

/// SC007: replica-group configuration sanity (`crates/replica`). A
/// replicated channel's consumer list *is* its Viewstamped Replication
/// group — `consumers[0]` the view-0 primary, the rest standbys — so the
/// declared membership, the routing, and the failover patience all have
/// hard constraints:
///
/// - the consumer list must carry exactly `replicas + 1` ranks;
/// - routing must be [`Routing::Static`]: the group is one *logical*
///   consumer, so round-robin spreading (and keyed partitioning across
///   it) would split state that is supposed to be one replicated whole;
/// - the standbys' failover patience must sit at or above twice the
///   consumer's `2t` producer patience (the `t`/`2t`/patience hierarchy:
///   replica failover is the slowest, most deliberate detector), and
///   some timeout must exist at all;
/// - a group of fewer than three replicas cannot form a majority without
///   the victim, so it cannot actually survive a death (warning — it
///   still replicates, it just cannot fail over).
fn lint_replication(ch: &ChannelDecl, findings: &mut Vec<Finding>) {
    let replicas = ch.config.replicas;
    if replicas == 0 {
        return;
    }
    if ch.consumers.len() != replicas + 1 {
        findings.push(Finding {
            code: "SC007",
            severity: Severity::Error,
            subject: ch.name.clone(),
            message: format!(
                "channel declares {replicas} replicas but lists {} consumer rank(s): the \
                 consumer list is the replica group (primary + standbys = {} ranks)",
                ch.consumers.len(),
                replicas + 1
            ),
        });
    }
    if ch.routing != Routing::Static {
        findings.push(Finding {
            code: "SC007",
            severity: Severity::Error,
            subject: ch.name.clone(),
            message: "replicated channel must route Static: the replica group is one \
                 logical consumer, spreading elements across it splits replicated state"
                .into(),
        });
    }
    match ch.config.effective_replication_patience() {
        None => findings.push(Finding {
            code: "SC007",
            severity: Severity::Error,
            subject: ch.name.clone(),
            message: "replicated channel has neither replication_patience nor \
                 failure_timeout: a dead primary would never be suspected"
                .into(),
        }),
        Some(patience) => {
            if let Some(t) = ch.config.failure_timeout {
                let consumer_patience = ch.consumer_patience.unwrap_or(t + t);
                if patience < consumer_patience + consumer_patience {
                    findings.push(Finding {
                        code: "SC007",
                        severity: Severity::Error,
                        subject: ch.name.clone(),
                        message: format!(
                            "replication patience ({patience}) sits below twice the consumer \
                             patience ({consumer_patience}): a standby could depose a primary \
                             that is legitimately waiting out the t/2t failure-detection \
                             hierarchy"
                        ),
                    });
                }
            }
        }
    }
    if replicas + 1 < 3 {
        findings.push(Finding {
            code: "SC007",
            severity: Severity::Warning,
            subject: ch.name.clone(),
            message: format!(
                "a replica group of {} cannot form a majority without the victim: state is \
                 replicated but no failover can complete after a death (need >= 3 ranks, \
                 i.e. replicas >= 2)",
                replicas + 1
            ),
        });
    }
}

/// SC004: routing totality — keyed maps must cover their key domain and
/// stay in range; endpoint sets must be non-empty.
fn lint_routing(ch: &ChannelDecl, findings: &mut Vec<Finding>) {
    if ch.producers.is_empty() {
        findings.push(Finding {
            code: "SC004",
            severity: Severity::Error,
            subject: ch.name.clone(),
            message: "channel has no producers".into(),
        });
    }
    if ch.consumers.is_empty() {
        findings.push(Finding {
            code: "SC004",
            severity: Severity::Error,
            subject: ch.name.clone(),
            message: "channel has no consumers: every send would have no target".into(),
        });
        return;
    }
    let nc = ch.consumers.len();
    if let Routing::Keyed { buckets } = &ch.routing {
        if buckets.is_empty() {
            findings.push(Finding {
                code: "SC004",
                severity: Severity::Error,
                subject: ch.name.clone(),
                message: "keyed routing with an empty key domain".into(),
            });
            return;
        }
        let holes: Vec<usize> =
            buckets.iter().enumerate().filter(|(_, b)| b.is_none()).map(|(i, _)| i).collect();
        if !holes.is_empty() {
            findings.push(Finding {
                code: "SC004",
                severity: Severity::Error,
                subject: ch.name.clone(),
                message: format!(
                    "keyed routing does not cover the key domain: {} of {} bucket(s) have \
                     no consumer (first hole: bucket {}) — elements keyed there are lost",
                    holes.len(),
                    buckets.len(),
                    holes[0]
                ),
            });
        }
        for (i, b) in buckets.iter().enumerate() {
            if let Some(c) = b {
                if *c >= nc {
                    findings.push(Finding {
                        code: "SC004",
                        severity: Severity::Error,
                        subject: ch.name.clone(),
                        message: format!(
                            "bucket {i} routes to consumer index {c}, but the channel has \
                             only {nc} consumer(s)"
                        ),
                    });
                }
            }
        }
    }
    // Consumers no producer can reach still complete (they hear `Term`s),
    // but they burn a rank doing nothing: worth knowing, not an error.
    let mut targeted: BTreeSet<usize> = BTreeSet::new();
    for pi in 0..ch.producers.len() {
        targeted.extend(ch.targets_of_producer(pi));
    }
    let idle: Vec<usize> =
        (0..nc).filter(|ci| !targeted.contains(ci)).map(|ci| ch.consumers[ci]).collect();
    if !idle.is_empty() {
        let shown: Vec<String> = idle.iter().take(4).map(|r| r.to_string()).collect();
        let ellipsis = if idle.len() > 4 { ", …" } else { "" };
        findings.push(Finding {
            code: "SC004",
            severity: Severity::Info,
            subject: ch.name.clone(),
            message: format!(
                "{} consumer rank(s) ({}{}) are never targeted by the routing: they only \
                 drain termination markers",
                idle.len(),
                shown.join(", "),
                ellipsis
            ),
        });
    }
}

/// SC003: termination reachability — a consumer's drain only finishes once
/// every producer's `Term` arrived (or, under a fault-tolerant drain, the
/// producer was declared dead, which misattributes a live one).
fn lint_termination(ch: &ChannelDecl, findings: &mut Vec<Finding>) {
    for &p in &ch.producers {
        if ch.terminating.contains(&p) {
            continue;
        }
        match (ch.drain, ch.config.failure_timeout) {
            (Drain::Operate, _) | (Drain::OperateOutcome, None) => {
                findings.push(Finding {
                    code: "SC003",
                    severity: Severity::Error,
                    subject: ch.name.clone(),
                    message: format!(
                        "producer rank {p} never terminates its flow and the drain waits \
                         unboundedly for its Term: every consumer hangs"
                    ),
                });
            }
            (Drain::OperateOutcome, Some(_)) => {
                findings.push(Finding {
                    code: "SC003",
                    severity: Severity::Warning,
                    subject: ch.name.clone(),
                    message: format!(
                        "producer rank {p} never terminates its flow: the fault-tolerant \
                         drain completes but wrongly reports it dead, and its element \
                         accounting is lost"
                    ),
                });
            }
        }
    }
    // The Static-routing loss-accounting path (PR 1): with a failure
    // timeout and pinned routing, a consumer death drops that consumer's
    // pinned elements into `StreamStats::lost` instead of re-routing.
    if ch.config.failure_timeout.is_some()
        && matches!(ch.routing, Routing::Static | Routing::Keyed { .. })
    {
        findings.push(Finding {
            code: "SC003",
            severity: Severity::Info,
            subject: ch.name.clone(),
            message: "failure timeout with pinned (static/keyed) routing: a dead consumer's \
                      elements are dropped and counted in StreamStats::lost, not re-routed"
                .into(),
        });
    }
}

/// SC002: dataflow-cycle detection with credit-exhaustion analysis on the
/// rank-level routing graph. Returns whether the graph is acyclic.
fn lint_cycles(topo: &Topology, findings: &mut Vec<Finding>) -> bool {
    // Edges: producer rank -> consumer rank for every routing-reachable
    // pair, labelled with boundedness and the channel it came from.
    struct Edge {
        to: usize,
        bounded: bool,
        chan: usize,
    }
    let mut adj: HashMap<usize, Vec<Edge>> = HashMap::new();
    let mut nodes: BTreeSet<usize> = BTreeSet::new();
    for (chan, ch) in topo.channels.iter().enumerate() {
        let bounded = ch.config.credits.is_some();
        for (pi, &p) in ch.producers.iter().enumerate() {
            for ci in ch.targets_of_producer(pi) {
                let c = ch.consumers[ci];
                adj.entry(p).or_default().push(Edge { to: c, bounded, chan });
                nodes.insert(p);
                nodes.insert(c);
            }
        }
    }

    let sccs = strongly_connected(&nodes, |n| {
        adj.get(&n).map(|es| es.iter().map(|e| e.to).collect()).unwrap_or_default()
    });

    let mut acyclic = true;
    let mut reported: HashSet<Vec<usize>> = HashSet::new();
    for scc in &sccs {
        let set: HashSet<usize> = scc.iter().copied().collect();
        let has_cycle = scc.len() > 1
            || adj.get(&scc[0]).map(|es| es.iter().any(|e| e.to == scc[0])).unwrap_or(false);
        if !has_cycle {
            continue;
        }
        acyclic = false;
        // Channels participating in the cycle (edges inside the SCC).
        let mut chans: BTreeSet<usize> = BTreeSet::new();
        for &n in scc {
            for e in adj.get(&n).into_iter().flatten() {
                if set.contains(&e.to) {
                    chans.insert(e.chan);
                }
            }
        }
        let chan_key: Vec<usize> = chans.iter().copied().collect();
        if !reported.insert(chan_key) {
            continue; // same channel cycle, different SCC: one report is enough
        }
        let names: Vec<&str> = chans.iter().map(|&i| topo.channels[i].name.as_str()).collect();
        // Credit-exhaustion: the cycle can deadlock only if back-pressure
        // propagates all the way around, i.e. a cycle exists using bounded
        // edges alone. An unbounded edge absorbs pressure (at a memory
        // cost) and breaks the blocking chain.
        let bounded_cycle = {
            let bounded_sccs = strongly_connected(&set, |n| {
                adj.get(&n)
                    .map(|es| {
                        es.iter()
                            .filter(|e| e.bounded && set.contains(&e.to))
                            .map(|e| e.to)
                            .collect()
                    })
                    .unwrap_or_default()
            });
            bounded_sccs.iter().any(|s| {
                s.len() > 1
                    || adj
                        .get(&s[0])
                        .map(|es| es.iter().any(|e| e.bounded && e.to == s[0]))
                        .unwrap_or(false)
            })
        };
        if bounded_cycle {
            findings.push(Finding {
                code: "SC002",
                severity: Severity::Error,
                subject: names.join("+"),
                message: format!(
                    "credit-exhaustion deadlock: dataflow cycle through {} rank(s) via \
                     channel(s) [{}] where a cycle of credit-bounded edges exists — once \
                     the windows fill, every endpoint waits for credits nobody can grant",
                    scc.len(),
                    names.join(", ")
                ),
            });
        } else {
            findings.push(Finding {
                code: "SC002",
                severity: Severity::Info,
                subject: names.join("+"),
                message: format!(
                    "dataflow cycle through {} rank(s) via channel(s) [{}] with an \
                     unbounded edge: it cannot credit-deadlock, but buffering on the \
                     unbounded edge is not memory-bounded",
                    scc.len(),
                    names.join(", ")
                ),
            });
        }
    }
    acyclic
}

/// Iterative Kosaraju: strongly connected components of the graph over
/// `nodes` with successor function `succ`. Returns each component as a
/// sorted vector.
fn strongly_connected(
    nodes: &(impl IntoIterator<Item = usize> + Clone),
    succ: impl Fn(usize) -> Vec<usize>,
) -> Vec<Vec<usize>> {
    let node_list: Vec<usize> = nodes.clone().into_iter().collect();
    let node_set: HashSet<usize> = node_list.iter().copied().collect();

    // Pass 1: finish order via iterative DFS.
    let mut visited: HashSet<usize> = HashSet::new();
    let mut order: Vec<usize> = Vec::new();
    for &start in &node_list {
        if visited.contains(&start) {
            continue;
        }
        let mut stack: Vec<(usize, Vec<usize>, usize)> = vec![(start, succ(start), 0)];
        visited.insert(start);
        while let Some((n, succs, i)) = stack.last_mut() {
            if *i < succs.len() {
                let next = succs[*i];
                *i += 1;
                if node_set.contains(&next) && visited.insert(next) {
                    let s = succ(next);
                    stack.push((next, s, 0));
                }
            } else {
                order.push(*n);
                stack.pop();
            }
        }
    }

    // Transpose adjacency.
    let mut rev: HashMap<usize, Vec<usize>> = HashMap::new();
    for &n in &node_list {
        for m in succ(n) {
            if node_set.contains(&m) {
                rev.entry(m).or_default().push(n);
            }
        }
    }

    // Pass 2: reverse DFS in reverse finish order.
    let mut assigned: HashSet<usize> = HashSet::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for &start in order.iter().rev() {
        if assigned.contains(&start) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        assigned.insert(start);
        while let Some(n) = stack.pop() {
            comp.push(n);
            for &m in rev.get(&n).into_iter().flatten() {
                if assigned.insert(m) {
                    stack.push(m);
                }
            }
        }
        comp.sort_unstable();
        sccs.push(comp);
    }
    sccs
}

//! The declarative topology model the static pass analyzes.
//!
//! A [`Topology`] is the communication structure of one decoupled program:
//! the α-partition into process groups and the stream channels between
//! them, with each channel's granularity, aggregation, credit window,
//! routing and drain discipline. Declarations are cheap plain data — they
//! can be written by hand, built by the per-application extractors in
//! `apps::*::topology`, or extracted from a live [`StreamChannel`] inside a
//! simulation via [`ChannelDecl::from_channel`].

use mpistream::{ChannelConfig, RoutePolicy, StreamChannel};

pub use mpisim::SimDuration;

/// One process group of the α-partition (e.g. the computation group G0 and
/// the analysis group G1 of Fig. 1).
#[derive(Clone, Debug)]
pub struct GroupDecl {
    pub name: String,
    /// World ranks of the members.
    pub ranks: Vec<usize>,
}

impl GroupDecl {
    pub fn new(name: impl Into<String>, ranks: Vec<usize>) -> GroupDecl {
        GroupDecl { name: name.into(), ranks }
    }
}

/// How a channel's elements reach consumers — the *effective* routing,
/// which for keyed application-level maps can be narrower than the
/// channel's configured [`RoutePolicy`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Routing {
    /// Producer `i` (index in the producer list) feeds consumer `i % nc`.
    Static,
    /// Every producer rotates over all consumers.
    RoundRobin,
    /// Explicit key-domain map: bucket `b` routes to consumer index
    /// `buckets[b]`. `None` is a hole — keys hashing there are never
    /// delivered (the mutation the routing-totality lint exists to catch).
    Keyed { buckets: Vec<Option<usize>> },
}

/// The consumer's drain discipline, which decides what a missing `Term`
/// does to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Drain {
    /// `operate` / `recv_one`: blocks until a `Term` arrives from every
    /// producer. A producer that never terminates hangs the consumer.
    Operate,
    /// `operate_outcome`: bounded waits when the channel has a
    /// `failure_timeout`; a silent producer is declared dead instead of
    /// hanging the drain.
    OperateOutcome,
}

/// Declaration of one stream channel.
#[derive(Clone, Debug)]
pub struct ChannelDecl {
    pub name: String,
    /// World ranks of the producer group.
    pub producers: Vec<usize>,
    /// World ranks of the consumer group.
    pub consumers: Vec<usize>,
    /// The channel's configuration (granularity, aggregation, credits,
    /// configured route, failure timeout).
    pub config: ChannelConfig,
    /// Effective routing (see [`Routing`]); defaults to the configured
    /// [`RoutePolicy`].
    pub routing: Routing,
    /// The consumer-side drain discipline.
    pub drain: Drain,
    /// Producers that call `terminate()`. Anything missing here models a
    /// producer exiting without closing its flow.
    pub terminating: Vec<usize>,
    /// Explicit consumer-side patience before declaring a producer dead.
    /// `None` means the library default (twice the producer timeout — the
    /// t/2t hierarchy), which is correct by construction.
    pub consumer_patience: Option<SimDuration>,
}

impl ChannelDecl {
    /// Declare a channel from its configuration. The effective routing
    /// mirrors `config.route`; every producer terminates; the drain is the
    /// blocking `operate` unless overridden.
    pub fn new(
        name: impl Into<String>,
        producers: Vec<usize>,
        consumers: Vec<usize>,
        config: ChannelConfig,
    ) -> ChannelDecl {
        let routing = match config.route {
            RoutePolicy::Static => Routing::Static,
            RoutePolicy::RoundRobin => Routing::RoundRobin,
        };
        let terminating = producers.clone();
        ChannelDecl {
            name: name.into(),
            producers,
            consumers,
            config,
            routing,
            drain: Drain::Operate,
            terminating,
            consumer_patience: None,
        }
    }

    /// Extract the declaration of a live channel endpoint (any role works:
    /// membership and configuration are agreed collectively at creation).
    pub fn from_channel(name: impl Into<String>, ch: &StreamChannel) -> ChannelDecl {
        ChannelDecl::new(
            name,
            ch.producers().to_vec(),
            ch.consumers().to_vec(),
            ch.config().clone(),
        )
    }

    /// Override the effective routing with an explicit keyed map.
    pub fn keyed(mut self, buckets: Vec<Option<usize>>) -> ChannelDecl {
        self.routing = Routing::Keyed { buckets };
        self
    }

    /// Override the drain discipline.
    pub fn drain(mut self, drain: Drain) -> ChannelDecl {
        self.drain = drain;
        self
    }

    /// Model `rank` exiting without calling `terminate()`.
    pub fn drop_term(mut self, rank: usize) -> ChannelDecl {
        self.terminating.retain(|&r| r != rank);
        self
    }

    /// Declare an explicit consumer-side patience (instead of the derived
    /// 2x producer timeout).
    pub fn patience(mut self, patience: SimDuration) -> ChannelDecl {
        self.consumer_patience = Some(patience);
        self
    }

    /// Consumer indices a given producer (by index) can route data to.
    pub(crate) fn targets_of_producer(&self, pi: usize) -> Vec<usize> {
        let nc = self.consumers.len();
        if nc == 0 {
            return Vec::new();
        }
        match &self.routing {
            Routing::Static => vec![pi % nc],
            Routing::RoundRobin => (0..nc).collect(),
            Routing::Keyed { buckets } => {
                let mut t: Vec<usize> =
                    buckets.iter().filter_map(|b| *b).filter(|&c| c < nc).collect();
                t.sort_unstable();
                t.dedup();
                t
            }
        }
    }
}

/// A whole decoupled program: the α-partition and its channels.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// World size (number of ranks the partition must cover).
    pub world: usize,
    /// The α-groups. May be empty for channel-only declarations (the
    /// partition lints then have nothing to say).
    pub groups: Vec<GroupDecl>,
    pub channels: Vec<ChannelDecl>,
}

impl Topology {
    pub fn new(world: usize) -> Topology {
        Topology { world, groups: Vec::new(), channels: Vec::new() }
    }

    pub fn group(mut self, g: GroupDecl) -> Topology {
        self.groups.push(g);
        self
    }

    pub fn channel(mut self, ch: ChannelDecl) -> Topology {
        self.channels.push(ch);
        self
    }
}

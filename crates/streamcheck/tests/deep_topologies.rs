//! Deep-pipeline coverage: the static pass on *multi-stage* topologies —
//! map → combine → tree-reduce → write, the shape the tree-aggregation
//! operators build. Every lint must fire on defects seeded into the
//! *intermediate* stages (not just the first hop), including a fan-in
//! feedback mutation that SC002 must flag as a credit-exhaustion cycle.

use mpistream::{ChannelConfig, RoutePolicy};
use streamcheck::{check, ChannelDecl, GroupDecl, Report, Severity, Topology};

fn errors_with(report: &Report, code: &str) -> usize {
    report.errors().filter(|f| f.code == code).count()
}

fn credited(credits: usize) -> ChannelConfig {
    ChannelConfig { credits: Some(credits), ..ChannelConfig::default() }
}

/// The canonical deep pipeline: 8 mappers (with producer-side combiners —
/// invisible to the topology, they only coarsen elements) feed 4 reducers
/// through a keyed channel; the reducers fold through a fan-in-2
/// reduction tree (stage 0: blocks [8,9] and [10,11]; stage 1: block
/// [8,10]) built as one private channel per block, exactly like
/// `create_tree_channels`; the root relays to the writer pair, keyed to
/// the first writer.
///
/// Stages: map(0..8) → reduce(8..12) → tree-s0 → tree-s1 → write(12..14).
fn deep_pipeline() -> Topology {
    Topology::new(14)
        .group(GroupDecl::new("map", (0..8).collect()))
        .group(GroupDecl::new("reduce", (8..12).collect()))
        .group(GroupDecl::new("write", (12..14).collect()))
        .channel(
            ChannelDecl::new("map-out", (0..8).collect(), (8..12).collect(), credited(32))
                .keyed(vec![Some(0), Some(1), Some(2), Some(3)]),
        )
        .channel(ChannelDecl::new("tree-s0-b0", vec![9], vec![8], credited(8)).keyed(vec![Some(0)]))
        .channel(
            ChannelDecl::new("tree-s0-b1", vec![11], vec![10], credited(8)).keyed(vec![Some(0)]),
        )
        .channel(
            ChannelDecl::new("tree-s1-b0", vec![10], vec![8], credited(8)).keyed(vec![Some(0)]),
        )
        .channel(
            ChannelDecl::new("reduce-to-write", vec![8], vec![12, 13], credited(8))
                .keyed(vec![Some(0)]),
        )
}

#[test]
fn deep_pipeline_is_clean_and_certified() {
    let report = check(&deep_pipeline());
    // The second writer only drains Terms (keyed to writer 0): that is the
    // SC004 info note, not an error, and must not block certification.
    assert!(report.is_clean(), "unexpected findings:\n{}", report.to_text());
    assert!(report.certified_deadlock_free, "{}", report.to_text());
}

// ---- SC001 through an intermediate stage ----

#[test]
fn sc001_reduce_rank_dropped_from_the_partition() {
    let mut topo = deep_pipeline();
    topo.groups[1].ranks.retain(|&r| r != 10); // tree-stage rank ownerless
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC001"), 1, "{}", report.to_text());
    assert!(!report.certified_deadlock_free);
}

// ---- SC002: the fan-in feedback mutation ----

#[test]
fn sc002_fan_in_feedback_is_a_credit_exhaustion_error() {
    // Mutation: the tree root (rank 8) feeds partial results *back* to a
    // stage-0 sender (rank 9) over a credit-bounded channel. The block
    // graph is no longer a forest directed at the root: 9 → 8 (tree-s0-b0)
    // and 8 → 9 (feedback) close a bounded loop through an intermediate
    // tree level, which must be reported as a credit-exhaustion deadlock.
    let topo = deep_pipeline().channel(ChannelDecl::new("feedback", vec![8], vec![9], credited(8)));
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC002"), 1, "{}", report.to_text());
    assert!(!report.certified_deadlock_free);
    let f = report.errors().find(|f| f.code == "SC002").unwrap();
    assert!(
        f.subject.contains("tree-s0-b0") && f.subject.contains("feedback"),
        "cycle report should name the tree stage and the feedback edge: {}",
        f.subject
    );
}

#[test]
fn sc002_unbounded_feedback_downgrades_to_info() {
    // The same loop with an unbounded feedback edge cannot credit-deadlock
    // (pressure is absorbed into memory): info, and still not certified.
    let topo = deep_pipeline().channel(ChannelDecl::new(
        "feedback",
        vec![8],
        vec![9],
        ChannelConfig::default(),
    ));
    let report = check(&topo);
    assert!(report.is_clean(), "{}", report.to_text());
    assert!(
        report.findings.iter().any(|f| f.code == "SC002" && f.severity == Severity::Info),
        "{}",
        report.to_text()
    );
    assert!(!report.certified_deadlock_free);
}

// ---- SC003 through an intermediate stage ----

#[test]
fn sc003_tree_sender_dropping_term_hangs_downstream() {
    let mut topo = deep_pipeline();
    // Stage-0 sender 11 exits without terminating: its block receiver
    // (rank 10) hangs, which starves stage 1 and the writer behind it.
    topo.channels[2] = topo.channels[2].clone().drop_term(11);
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC003"), 1, "{}", report.to_text());
    assert!(!report.certified_deadlock_free);
}

// ---- SC004 through an intermediate stage ----

#[test]
fn sc004_tree_block_bucket_out_of_range() {
    let mut topo = deep_pipeline();
    // A block channel has exactly one consumer (the receiver); routing a
    // bucket to index 1 targets a consumer that does not exist.
    topo.channels[3] = topo.channels[3].clone().keyed(vec![Some(1)]);
    let report = check(&topo);
    assert!(errors_with(&report, "SC004") >= 1, "{}", report.to_text());
}

#[test]
fn sc004_keyed_hole_in_the_map_stage() {
    let mut topo = deep_pipeline();
    topo.channels[0] = topo.channels[0].clone().keyed(vec![Some(0), None, Some(2), Some(3)]);
    let report = check(&topo);
    assert!(errors_with(&report, "SC004") >= 1, "{}", report.to_text());
}

// ---- SC005 / SC006 on an intermediate stage ----

#[test]
fn sc005_zero_credit_window_on_a_tree_channel() {
    let mut topo = deep_pipeline();
    topo.channels[1].config.credits = Some(0);
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC005"), 1, "{}", report.to_text());
}

#[test]
fn sc006_credit_batch_overflows_a_tree_channel_window() {
    let mut topo = deep_pipeline();
    // credits 8, aggregation 1 → stall margin 8; a batch of 9 can never
    // flush once the sender stalls mid-tree.
    topo.channels[3].config.credit_batch = 9;
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC006"), 1, "{}", report.to_text());
}

// ---- deeper trees stay certified ----

#[test]
fn four_level_tree_pipeline_certifies() {
    // 16 leaves, fan-in 2, stages [16]→[8]→[4]→[2]→root: a 4-level block
    // forest over ranks 0..16 with a writer at 16. Build the per-block
    // channels the way plan_tree lays them out.
    let mut topo = Topology::new(17)
        .group(GroupDecl::new("leaves", (0..16).collect()))
        .group(GroupDecl::new("write", vec![16]));
    let mut members: Vec<usize> = (0..16).collect();
    let mut stage = 0;
    while members.len() > 1 {
        let mut next = Vec::new();
        for (bi, block) in members.chunks(2).enumerate() {
            next.push(block[0]);
            if block.len() < 2 {
                continue;
            }
            topo = topo.channel(
                ChannelDecl::new(
                    format!("tree-s{stage}-b{bi}"),
                    block[1..].to_vec(),
                    vec![block[0]],
                    ChannelConfig {
                        credits: Some(4),
                        route: RoutePolicy::Static,
                        ..ChannelConfig::default()
                    },
                )
                .keyed(vec![Some(0)]),
            );
        }
        members = next;
        stage += 1;
    }
    assert_eq!(stage, 4);
    topo = topo.channel(ChannelDecl::new("root-to-write", vec![0], vec![16], credited(4)));
    let report = check(&topo);
    assert!(report.is_clean(), "{}", report.to_text());
    assert!(report.certified_deadlock_free, "{}", report.to_text());
}

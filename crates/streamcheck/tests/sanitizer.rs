//! Dynamic-pass coverage: the happens-before sanitizer (mpisim built with
//! the `check` feature, opted in via `World::with_check()`) catches a
//! constructed wildcard race, stays silent when the candidates are causally
//! ordered, reports orphaned messages at finalize, reports nothing on a
//! clean stream pipeline, and annotates credit-exhaustion deadlock reports
//! with its credit-state table.

use mpisim::{MachineConfig, SanReport, Src, World};
use mpistream::{ChannelConfig, GroupSpec, Role, Stream, StreamChannel};

const TAG: u32 = 7;

/// Ranks 1 and 2 send to rank 0 concurrently (no communication between
/// them); rank 0 waits until both are in its mailbox, then receives with
/// `Src::Any`. The two candidates are causally unordered: whichever the
/// wildcard picks, the outcome depends on timing — the race SC101 exists
/// precisely because a rerun with different noise could deliver the other.
#[test]
fn wildcard_race_is_detected() {
    let world = World::new(MachineConfig::default()).with_seed(3).with_check();
    let outcome = world.run_expect(3, |rank| match rank.world_rank() {
        0 => {
            rank.compute(1.0); // let both rivals land in the mailbox
            let _: (u32, _) = rank.recv(Src::Any, TAG);
            let _: (u32, _) = rank.recv(Src::Any, TAG);
        }
        me => rank.send(0, TAG, 64, me as u32),
    });
    let races: Vec<&SanReport> = outcome
        .san_reports
        .iter()
        .filter(|r| matches!(r, SanReport::WildcardRace { .. }))
        .collect();
    assert_eq!(races.len(), 1, "expected exactly one race: {:?}", outcome.san_reports);
    if let SanReport::WildcardRace { receiver, chosen_src, rival_src, .. } = races[0] {
        assert_eq!(*receiver, 0);
        let mut pair = [*chosen_src, *rival_src];
        pair.sort_unstable();
        assert_eq!(pair, [1, 2]);
    }
    assert!(races[0].to_json().contains("\"code\":\"SC101\""));
}

/// Same shape, but rank 2 only sends after hearing from rank 1, so the two
/// candidates are causally ordered (rank 1's send happens-before rank 2's).
/// Both sit in rank 0's mailbox when the wildcard matches — and that is
/// fine: vector clocks prove the order, so no race is reported.
#[test]
fn causally_ordered_candidates_are_not_a_race() {
    let world = World::new(MachineConfig::default()).with_seed(3).with_check();
    let outcome = world.run_expect(3, |rank| match rank.world_rank() {
        0 => {
            rank.compute(1.0);
            let _: (u32, _) = rank.recv(Src::Any, TAG);
            let _: (u32, _) = rank.recv(Src::Any, TAG);
        }
        1 => {
            rank.send(0, TAG, 64, 1u32);
            rank.send(2, TAG + 1, 8, 0u8); // hand the baton to rank 2
        }
        _ => {
            let _: (u8, _) = rank.recv(Src::Rank(1), TAG + 1);
            rank.send(0, TAG, 64, 2u32);
        }
    });
    assert!(outcome.san_reports.is_empty(), "ordered sends misreported: {:?}", outcome.san_reports);
}

/// A message nobody ever receives is sitting in the mailbox at finalize —
/// SC102, the decoupled equivalent of an unmatched isend.
#[test]
fn orphan_message_is_reported_at_finalize() {
    let world = World::new(MachineConfig::default()).with_seed(3).with_check();
    let outcome = world.run_expect(2, |rank| {
        if rank.world_rank() == 1 {
            rank.send(0, TAG, 128, 42u64);
        }
    });
    assert_eq!(outcome.san_reports.len(), 1, "{:?}", outcome.san_reports);
    match &outcome.san_reports[0] {
        SanReport::Orphan { dst, src, .. } => {
            assert_eq!((*dst, *src), (0, 1));
        }
        other => panic!("expected an orphan report, got {other:?}"),
    }
}

/// A healthy credit-windowed stream pipeline produces zero sanitizer
/// reports: internal wildcard receives, credit traffic and termination are
/// all recognised as protocol, not defects.
#[test]
fn clean_stream_pipeline_has_zero_reports() {
    let world = World::new(MachineConfig::default()).with_seed(9).with_check();
    let outcome = world.run_expect(6, |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: 3 };
        let role = spec.role_of(rank.world_rank());
        let ch = StreamChannel::create(
            rank,
            &comm,
            role,
            ChannelConfig { credits: Some(8), aggregation: 2, ..ChannelConfig::default() },
        );
        let mut stream: Stream<u64> = Stream::attach(ch);
        match role {
            Role::Producer => {
                for i in 0..40 {
                    stream.isend(rank, i);
                }
                stream.terminate(rank);
            }
            Role::Consumer => {
                stream.operate(rank, |_, _| {});
            }
            Role::Bystander => unreachable!(),
        }
    });
    assert!(
        outcome.san_reports.is_empty(),
        "clean pipeline misreported: {:?}",
        outcome.san_reports
    );
}

/// A producer that exhausts its credit window against a consumer that never
/// drains deadlocks; the desim deadlock report must carry the sanitizer's
/// credit-state table so the hang is diagnosable from the error alone.
#[test]
fn credit_deadlock_report_includes_credit_table() {
    let world = World::new(MachineConfig::default()).with_seed(5).with_check();
    let err = world
        .run(2, |rank| {
            let comm = rank.comm_world();
            let spec = GroupSpec { every: 2 };
            let role = spec.role_of(rank.world_rank());
            let ch = StreamChannel::create(
                rank,
                &comm,
                role,
                ChannelConfig { credits: Some(4), ..ChannelConfig::default() },
            );
            let mut stream: Stream<u32> = Stream::attach(ch);
            match role {
                Role::Producer => {
                    for i in 0..8 {
                        stream.isend(rank, i); // blocks at the 5th element
                    }
                    stream.terminate(rank);
                }
                Role::Consumer => {
                    // Never drains the stream: waits on a tag nobody sends.
                    let _: (u8, _) = rank.recv(Src::Rank(0), 999);
                }
                Role::Bystander => unreachable!(),
            }
        })
        .expect_err("this pipeline must deadlock");
    let report = err.to_string();
    assert!(report.contains("deadlock"), "unexpected error: {report}");
    assert!(
        report.contains("streamcheck sanitizer credit state"),
        "credit table missing from deadlock report:\n{report}"
    );
    assert!(report.contains("window full"), "window-full marker missing:\n{report}");
    // Satellite: the report also names each blocked process's last span.
    assert!(report.contains("last span"), "span annotation missing:\n{report}");
}

//! Static-pass coverage: every lint fires on its target defect and stays
//! silent on valid topologies; a battery of seeded mutations of a known-good
//! topology is each flagged; and (property) randomly-shaped pipelines the
//! checker certifies deadlock-free do complete in real simulation.

use std::sync::Arc;

use mpisim::{MachineConfig, SimDuration, World};
use mpistream::{ChannelConfig, GroupSpec, Role, RoutePolicy, Stream, StreamChannel};
use parking_lot::Mutex;
use proptest::prelude::*;
use streamcheck::{check, ChannelDecl, Drain, GroupDecl, Report, Routing, Topology};

fn has(report: &Report, code: &str, severity: streamcheck::Severity) -> bool {
    report.findings.iter().any(|f| f.code == code && f.severity == severity)
}

fn errors_with(report: &Report, code: &str) -> usize {
    report.errors().filter(|f| f.code == code).count()
}

/// A valid two-group, one-channel pipeline (the Fig. 1 shape): ranks 0..6
/// compute, ranks 6..8 analyze, one credit-bounded channel between them.
fn fig1() -> Topology {
    Topology::new(8)
        .group(GroupDecl::new("compute", (0..6).collect()))
        .group(GroupDecl::new("analysis", (6..8).collect()))
        .channel(ChannelDecl::new(
            "results",
            (0..6).collect(),
            (6..8).collect(),
            ChannelConfig { credits: Some(32), ..ChannelConfig::default() },
        ))
}

#[test]
fn valid_pipeline_is_clean_and_certified() {
    let report = check(&fig1());
    assert!(report.is_clean(), "unexpected findings:\n{}", report.to_text());
    assert!(report.certified_deadlock_free);
    assert!(report.to_text().contains("certified deadlock-free"));
    assert!(report.to_json().contains("\"certified_deadlock_free\":true"));
}

// ---- SC001: group partition ----

#[test]
fn sc001_overlapping_groups() {
    let mut topo = fig1();
    topo.groups[1].ranks.push(5); // rank 5 in both groups
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC001"), 1, "{}", report.to_text());
    assert!(!report.certified_deadlock_free);
}

#[test]
fn sc001_non_covering_groups() {
    let mut topo = fig1();
    topo.groups[0].ranks.retain(|&r| r != 3); // rank 3 ownerless
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC001"), 1, "{}", report.to_text());
}

#[test]
fn sc001_empty_group_and_out_of_range() {
    let topo = Topology::new(2)
        .group(GroupDecl::new("a", vec![0, 1]))
        .group(GroupDecl::new("b", vec![]))
        .group(GroupDecl::new("c", vec![7]));
    let report = check(&topo);
    assert!(errors_with(&report, "SC001") >= 2, "{}", report.to_text());
}

#[test]
fn channel_only_topology_skips_partition_lints() {
    let mut topo = fig1();
    topo.groups.clear();
    assert!(check(&topo).is_clean());
}

// ---- SC002: dataflow cycles ----

/// Request/reply between two groups where both directions are
/// credit-bounded: the windows can fill all the way around the loop.
#[test]
fn sc002_bounded_cycle_is_error() {
    let bounded = ChannelConfig { credits: Some(8), ..ChannelConfig::default() };
    let topo = Topology::new(4)
        .group(GroupDecl::new("g0", vec![0, 1]))
        .group(GroupDecl::new("g1", vec![2, 3]))
        .channel(ChannelDecl::new("fwd", vec![0, 1], vec![2, 3], bounded.clone()))
        .channel(ChannelDecl::new("rev", vec![2, 3], vec![0, 1], bounded));
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC002"), 1, "{}", report.to_text());
    assert!(!report.certified_deadlock_free);
}

/// The same loop with the reverse direction unbounded (the cg/pic shape):
/// back-pressure cannot propagate around, so it is an info, not an error.
#[test]
fn sc002_mixed_cycle_is_info_only() {
    let bounded = ChannelConfig { credits: Some(8), ..ChannelConfig::default() };
    let unbounded = ChannelConfig { credits: None, ..ChannelConfig::default() };
    let topo = Topology::new(4)
        .group(GroupDecl::new("g0", vec![0, 1]))
        .group(GroupDecl::new("g1", vec![2, 3]))
        .channel(ChannelDecl::new("fwd", vec![0, 1], vec![2, 3], bounded))
        .channel(ChannelDecl::new("rev", vec![2, 3], vec![0, 1], unbounded));
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC002"), 0, "{}", report.to_text());
    assert!(has(&report, "SC002", streamcheck::Severity::Info));
    // Cyclic: clean but not *certified*.
    assert!(report.is_clean());
    assert!(!report.certified_deadlock_free);
}

#[test]
fn sc002_self_loop_is_detected() {
    let bounded = ChannelConfig { credits: Some(4), ..ChannelConfig::default() };
    let topo = Topology::new(2).channel(
        ChannelDecl::new("loop", vec![0], vec![0, 1], bounded).keyed(vec![Some(0), Some(1)]),
    );
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC002"), 1, "{}", report.to_text());
}

// ---- SC003: termination reachability ----

#[test]
fn sc003_dropped_term_blocking_drain_is_error() {
    let mut topo = fig1();
    let ch = topo.channels.pop().unwrap();
    let report = check(&topo.channel(ch.drop_term(2)));
    assert_eq!(errors_with(&report, "SC003"), 1, "{}", report.to_text());
}

#[test]
fn sc003_dropped_term_fault_tolerant_drain_is_warning() {
    let mut topo = fig1();
    let mut ch = topo.channels.pop().unwrap();
    ch.config.failure_timeout = Some(SimDuration::from_millis(10));
    let report = check(&topo.channel(ch.drain(Drain::OperateOutcome).drop_term(2)));
    assert_eq!(errors_with(&report, "SC003"), 0, "{}", report.to_text());
    assert!(has(&report, "SC003", streamcheck::Severity::Warning));
}

#[test]
fn sc003_outcome_drain_without_timeout_still_hangs() {
    let mut topo = fig1();
    let ch = topo.channels.pop().unwrap();
    let report = check(&topo.channel(ch.drain(Drain::OperateOutcome).drop_term(2)));
    assert_eq!(errors_with(&report, "SC003"), 1, "{}", report.to_text());
}

#[test]
fn sc003_pinned_routing_with_timeout_notes_loss_accounting() {
    let mut topo = fig1();
    topo.channels[0].config.failure_timeout = Some(SimDuration::from_millis(10));
    let report = check(&topo);
    assert!(has(&report, "SC003", streamcheck::Severity::Info), "{}", report.to_text());
    assert!(report.is_clean());
}

// ---- SC004: routing totality ----

#[test]
fn sc004_keyed_hole_is_error() {
    let mut topo = fig1();
    let ch = topo.channels.pop().unwrap();
    let report = check(&topo.channel(ch.keyed(vec![Some(0), None])));
    assert_eq!(errors_with(&report, "SC004"), 1, "{}", report.to_text());
}

#[test]
fn sc004_out_of_range_bucket_is_error() {
    let mut topo = fig1();
    let ch = topo.channels.pop().unwrap();
    let report = check(&topo.channel(ch.keyed(vec![Some(0), Some(5)])));
    assert_eq!(errors_with(&report, "SC004"), 1, "{}", report.to_text());
}

#[test]
fn sc004_empty_consumers_is_error() {
    let topo = Topology::new(2).channel(ChannelDecl::new(
        "void",
        vec![0, 1],
        vec![],
        ChannelConfig::default(),
    ));
    assert_eq!(errors_with(&check(&topo), "SC004"), 1);
}

#[test]
fn sc004_untargeted_consumer_is_info() {
    let mut topo = fig1();
    let ch = topo.channels.pop().unwrap();
    // Both keys route to consumer 0; consumer 1 (rank 7) only drains Terms.
    let report = check(&topo.channel(ch.keyed(vec![Some(0), Some(0)])));
    assert!(report.is_clean(), "{}", report.to_text());
    assert!(has(&report, "SC004", streamcheck::Severity::Info));
}

// ---- SC005: configuration ----

#[test]
fn sc005_each_invalid_config_is_an_error() {
    let cases: Vec<ChannelConfig> = vec![
        ChannelConfig { element_bytes: 0, ..ChannelConfig::default() },
        ChannelConfig { aggregation: 0, ..ChannelConfig::default() },
        ChannelConfig { credits: Some(0), ..ChannelConfig::default() },
        ChannelConfig { credits: Some(4), aggregation: 8, ..ChannelConfig::default() },
        ChannelConfig { failure_timeout: Some(SimDuration::ZERO), ..ChannelConfig::default() },
    ];
    for config in cases {
        let topo =
            Topology::new(2).channel(ChannelDecl::new("bad", vec![0], vec![1], config.clone()));
        let report = check(&topo);
        assert_eq!(errors_with(&report, "SC005"), 1, "{config:?}\n{}", report.to_text());
    }
}

#[test]
fn sc005_patience_below_twice_timeout_is_error() {
    let t = SimDuration::from_millis(10);
    let mut topo = fig1();
    topo.channels[0].config.failure_timeout = Some(t);
    topo.channels[0].consumer_patience = Some(t); // < 2t
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC005"), 1, "{}", report.to_text());

    // Exactly 2t satisfies the hierarchy.
    let mut ok = fig1();
    ok.channels[0].config.failure_timeout = Some(t);
    let ok = Topology { channels: vec![ok.channels[0].clone().patience(t + t)], ..ok };
    assert!(check(&ok).is_clean());
}

// ---- SC006: batched credit flush vs the window's stall margin ----

#[test]
fn sc006_credit_batch_above_stall_margin_is_error() {
    // Window 8, aggregation 2 → stall margin 8 - 2 + 1 = 7; a batch of 8
    // can withhold the flush a stalled producer is waiting for.
    let bad = ChannelConfig {
        credits: Some(8),
        aggregation: 2,
        credit_batch: 8,
        ..ChannelConfig::default()
    };
    let topo = Topology::new(2).channel(ChannelDecl::new("bad", vec![0], vec![1], bad.clone()));
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC006"), 1, "{}", report.to_text());
    assert_eq!(errors_with(&report, "SC005"), 0, "promoted out of SC005:\n{}", report.to_text());

    // Exactly the margin is legal.
    let ok = ChannelConfig { credit_batch: 7, ..bad };
    let topo = Topology::new(2).channel(ChannelDecl::new("ok", vec![0], vec![1], ok));
    assert!(check(&topo).is_clean(), "{}", check(&topo).to_text());
}

/// `validate()` short-circuits on its first error; the SC006 relation is
/// computed from the fields directly, so both must be reported at once.
#[test]
fn sc006_fires_alongside_other_config_errors() {
    let config = ChannelConfig {
        credits: Some(8),
        credit_batch: 9,
        failure_timeout: Some(SimDuration::ZERO),
        replicas: 0,
        replication_patience: None,
        ..ChannelConfig::default()
    };
    let topo = Topology::new(2).channel(ChannelDecl::new("bad", vec![0], vec![1], config));
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC005"), 1, "{}", report.to_text());
    assert_eq!(errors_with(&report, "SC006"), 1, "{}", report.to_text());
}

// ---- SC007: replica-group sanity (crates/replica) ----

/// A correctly replicated pipeline: two producers, a three-member
/// replica group (primary + two standbys), timeouts on the t/2t/4t
/// hierarchy.
fn replicated() -> Topology {
    let cfg = ChannelConfig {
        credits: Some(32),
        failure_timeout: Some(SimDuration::from_millis(10)),
        replicas: 2,
        ..ChannelConfig::default()
    };
    Topology::new(5)
        .group(GroupDecl::new("producers", vec![0, 1]))
        .group(GroupDecl::new("replicas", vec![2, 3, 4]))
        .channel(ChannelDecl::new("rep", vec![0, 1], vec![2, 3, 4], cfg))
}

#[test]
fn sc007_replicated_base_is_clean_and_certified() {
    let report = check(&replicated());
    assert!(report.is_clean(), "{}", report.to_text());
    assert!(report.certified_deadlock_free);
}

#[test]
fn sc007_group_size_mismatch_is_error() {
    let mut topo = replicated();
    topo.channels[0].consumers.pop(); // 2 consumers for replicas = 2
    topo.groups[1].ranks.pop(); // keep the partition lints quiet
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC007"), 1, "{}", report.to_text());
}

#[test]
fn sc007_non_static_routing_is_error() {
    let mut topo = replicated();
    topo.channels[0].routing = Routing::RoundRobin;
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC007"), 1, "{}", report.to_text());
}

#[test]
fn sc007_missing_timeout_is_error() {
    let mut topo = replicated();
    topo.channels[0].config.failure_timeout = None;
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC007"), 1, "{}", report.to_text());
}

#[test]
fn sc007_patience_below_the_failover_hierarchy_is_error() {
    let mut topo = replicated();
    // Consumer patience is 2t = 20ms; a 15ms failover patience would
    // depose primaries that are merely waiting out the t/2t detectors.
    topo.channels[0].config.replication_patience = Some(SimDuration::from_millis(15));
    let report = check(&topo);
    assert_eq!(errors_with(&report, "SC007"), 1, "{}", report.to_text());

    // At exactly twice the consumer patience the hierarchy holds.
    let mut ok = replicated();
    ok.channels[0].config.replication_patience = Some(SimDuration::from_millis(40));
    assert!(check(&ok).is_clean(), "{}", check(&ok).to_text());
}

#[test]
fn sc007_pair_group_is_warning_only() {
    // Two members replicate state but cannot out-vote a death: flagged,
    // yet not an error — the replication itself still works.
    let mut topo = replicated();
    topo.world = 4; // keep the partition covering: rank 4 leaves the world
    topo.channels[0].config.replicas = 1;
    topo.channels[0].consumers.pop();
    topo.groups[1].ranks.pop();
    let report = check(&topo);
    assert!(report.is_clean(), "{}", report.to_text());
    assert!(has(&report, "SC007", streamcheck::Severity::Warning), "{}", report.to_text());
}

// ---- Mutation battery: one clean base, every seeded defect flagged ----

/// The Fig. 5 mapreduce shape: mappers -> reducers (keyed) -> master.
fn fig5() -> Topology {
    let cfg =
        ChannelConfig { element_bytes: 4 << 10, credits: Some(64), ..ChannelConfig::default() };
    Topology::new(8)
        .group(GroupDecl::new("mappers", (0..5).collect()))
        .group(GroupDecl::new("reducers", (5..7).collect()))
        .group(GroupDecl::new("master", vec![7]))
        .channel(
            ChannelDecl::new("words", (0..5).collect(), vec![5, 6], cfg.clone())
                .keyed(vec![Some(0), Some(1)]),
        )
        .channel(ChannelDecl::new("counts", vec![5, 6], vec![7], cfg))
}

#[test]
fn mutation_battery_every_defect_is_flagged() {
    assert!(check(&fig5()).is_clean(), "base must be clean:\n{}", check(&fig5()).to_text());

    type Mutation = (&'static str, Box<dyn Fn(Topology) -> Topology>);
    let mutations: Vec<Mutation> = vec![
        (
            "dropped Term",
            Box::new(|mut t: Topology| {
                let ch = t.channels.remove(0).drop_term(2);
                t.channels.insert(0, ch);
                t
            }),
        ),
        (
            "zero credit window",
            Box::new(|mut t| {
                t.channels[0].config.credits = Some(0);
                t
            }),
        ),
        (
            "credit window below one batch",
            Box::new(|mut t| {
                t.channels[0].config.aggregation = 16;
                t.channels[0].config.credits = Some(8);
                t
            }),
        ),
        (
            "keyed routing hole",
            Box::new(|mut t| {
                t.channels[0].routing = Routing::Keyed { buckets: vec![Some(0), None] };
                t
            }),
        ),
        (
            "keyed bucket out of range",
            Box::new(|mut t| {
                t.channels[0].routing = Routing::Keyed { buckets: vec![Some(0), Some(9)] };
                t
            }),
        ),
        (
            "zero stream granularity",
            Box::new(|mut t| {
                t.channels[1].config.element_bytes = 0;
                t
            }),
        ),
        (
            "zero aggregation",
            Box::new(|mut t| {
                t.channels[1].config.aggregation = 0;
                t
            }),
        ),
        (
            "zero failure timeout",
            Box::new(|mut t| {
                t.channels[0].config.failure_timeout = Some(SimDuration::ZERO);
                t
            }),
        ),
        (
            "overlapping groups",
            Box::new(|mut t| {
                t.groups[1].ranks.push(0);
                t
            }),
        ),
        (
            "non-covering groups",
            Box::new(|mut t| {
                t.groups[0].ranks.retain(|&r| r != 4);
                t
            }),
        ),
        (
            "empty consumer set",
            Box::new(|mut t| {
                t.channels[1].consumers.clear();
                t
            }),
        ),
        (
            "patience below 2x timeout",
            Box::new(|mut t| {
                let d = SimDuration::from_millis(10);
                t.channels[0].config.failure_timeout = Some(d);
                t.channels[0].consumer_patience = Some(d);
                t
            }),
        ),
        (
            "credit batch above the window's stall margin",
            Box::new(|mut t| {
                // fig5's window is 64 with aggregation 1: margin 64.
                t.channels[0].config.credit_batch = 65;
                t
            }),
        ),
        (
            "credit-bounded dataflow cycle",
            Box::new(|t| {
                let back = ChannelConfig { credits: Some(16), ..ChannelConfig::default() };
                t.channel(ChannelDecl::new("feedback", vec![7], vec![0, 1, 2, 3, 4], back))
            }),
        ),
        (
            "replica group understaffed",
            Box::new(|mut t| {
                // counts lists one consumer; a 3-member group needs 3.
                t.channels[1].config.replicas = 2;
                t
            }),
        ),
        (
            "replicated channel routed keyed",
            Box::new(|mut t| {
                // words is keyed across its 2 consumers; declaring them a
                // replica group makes that a split of replicated state.
                t.channels[0].config.replicas = 1;
                t
            }),
        ),
    ];

    assert!(mutations.len() >= 10);
    for (name, mutate) in mutations {
        let report = check(&mutate(fig5()));
        assert!(!report.is_clean(), "mutation `{name}` was not flagged:\n{}", report.to_text());
    }
}

// ---- Extraction from a live channel ----

#[test]
fn from_channel_extracts_the_real_configuration() {
    let decl: Arc<Mutex<Option<ChannelDecl>>> = Arc::new(Mutex::new(None));
    let out = decl.clone();
    let world = World::new(MachineConfig::default()).with_seed(11);
    world.run_expect(4, move |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: 2 };
        let role = spec.role_of(rank.world_rank());
        let cfg = ChannelConfig {
            credits: Some(48),
            route: RoutePolicy::RoundRobin,
            ..ChannelConfig::default()
        };
        let ch = StreamChannel::create(rank, &comm, role, cfg);
        if rank.world_rank() == 0 {
            *out.lock() = Some(ChannelDecl::from_channel("live", &ch));
        }
        let mut stream: Stream<u64> = Stream::attach(ch);
        match role {
            Role::Producer => {
                stream.isend(rank, 7);
                stream.terminate(rank);
            }
            Role::Consumer => {
                stream.operate(rank, |_, _| {});
            }
            Role::Bystander => unreachable!(),
        }
    });
    let decl = decl.lock().take().expect("rank 0 extracted a declaration");
    assert_eq!(decl.producers, vec![0, 2]);
    assert_eq!(decl.consumers, vec![1, 3]);
    assert_eq!(decl.config.credits, Some(48));
    assert_eq!(decl.routing, Routing::RoundRobin);
    let topo = Topology::new(4)
        .group(GroupDecl::new("producers", vec![0, 2]))
        .group(GroupDecl::new("consumers", vec![1, 3]))
        .channel(decl);
    let report = check(&topo);
    assert!(report.is_clean(), "{}", report.to_text());
    assert!(report.certified_deadlock_free);
}

// ---- Property: certified topologies complete in simulation ----

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// For random pipeline shapes and channel configurations that the
    /// static pass certifies deadlock-free, the real simulation terminates
    /// and conserves elements. (If the checker ever certified a deadlocking
    /// shape, `run_expect` would panic with the deadlock report.)
    #[test]
    fn certified_pipelines_complete(
        every in 2usize..5,
        blocks in 1usize..4,
        per_producer in 1usize..30,
        aggregation in 1usize..6,
        credits_raw in 0usize..4,
        round_robin in any::<bool>(),
    ) {
        let nprocs = every * blocks;
        let cfg = ChannelConfig {
            element_bytes: 1 << 10,
            aggregation,
            // Keep the window at least one batch so the base is valid.
            credits: if credits_raw == 0 { None } else { Some(credits_raw * aggregation.max(8)) },
            route: if round_robin { RoutePolicy::RoundRobin } else { RoutePolicy::Static },
            credit_batch: 1,
            failure_timeout: None,
            replicas: 0,
            replication_patience: None,
        };
        let spec = GroupSpec { every };
        let producers: Vec<usize> =
            (0..nprocs).filter(|&r| spec.role_of(r) == Role::Producer).collect();
        let consumers: Vec<usize> =
            (0..nprocs).filter(|&r| spec.role_of(r) == Role::Consumer).collect();
        let topo = Topology::new(nprocs)
            .group(GroupDecl::new("producers", producers.clone()))
            .group(GroupDecl::new("consumers", consumers.clone()))
            .channel(ChannelDecl::new("pipe", producers.clone(), consumers, cfg.clone()));
        let report = check(&topo);
        prop_assert!(report.is_clean(), "{}", report.to_text());
        prop_assert!(report.certified_deadlock_free);

        let received = Arc::new(Mutex::new(0u64));
        let rcv = received.clone();
        let world = World::new(MachineConfig::default()).with_seed(5);
        world.run_expect(nprocs, move |rank| {
            let comm = rank.comm_world();
            let role = spec.role_of(rank.world_rank());
            let ch = StreamChannel::create(rank, &comm, role, cfg.clone());
            let mut stream: Stream<u32> = Stream::attach(ch);
            match role {
                Role::Producer => {
                    for i in 0..per_producer {
                        stream.isend(rank, i as u32);
                    }
                    stream.terminate(rank);
                }
                Role::Consumer => {
                    let mut local = 0;
                    stream.operate(rank, |_, _| local += 1);
                    *rcv.lock() += local;
                }
                Role::Bystander => unreachable!(),
            }
        });
        prop_assert_eq!(*received.lock(), (producers.len() * per_producer) as u64);
    }
}

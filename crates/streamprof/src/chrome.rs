//! Chrome-trace (`chrome://tracing` / Perfetto "JSON object format")
//! exporter and a structural validator for tests.
//!
//! The exporter is deliberately serde-free (the build is offline) and
//! fully deterministic: timestamps are integer-nanosecond values printed
//! as exact `micros.nnn` decimals — no float formatting anywhere — and
//! spans/streams are emitted in sorted order, one event per line.

use std::fmt::Write as _;

use crate::trace::Trace;

/// Exact microseconds with nanosecond remainder, from integer nanos.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

impl Trace {
    /// Export as Chrome-trace JSON (object format). Each span becomes a
    /// complete (`"ph":"X"`) event with `pid` 0 and `tid` = world rank;
    /// per-rank `thread_name` metadata labels the rows; stream counters
    /// and the clock domain ride in a `"streamprof"` top-level key that
    /// `chrome://tracing` ignores.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\n\"traceEvents\":[\n");
        let mut first = true;
        let npids = self.spans().iter().map(|s| s.pid + 1).max().unwrap_or(0);
        for pid in 0..npids {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{pid},\
                 \"args\":{{\"name\":\"rank {pid}\"}}}}"
            );
        }
        for s in self.spans() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let ts = micros(s.start.as_nanos());
            let dur = micros(s.end.as_nanos() - s.start.as_nanos());
            let _ = write!(
                out,
                "{{\"name\":\"{cat}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":0,\
                 \"tid\":{tid},\"ts\":{ts},\"dur\":{dur}}}",
                cat = s.cat,
                tid = s.pid,
            );
        }
        out.push_str("\n],\n\"displayTimeUnit\":\"ms\",\n");
        let _ =
            writeln!(out, "\"streamprof\":{{\"clock\":\"{}\",\"streams\":[", self.clock().label());
        let mut first = true;
        for (&(pid, channel), m) in self.streams() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"pid\":{pid},\"channel\":{channel},\
                 \"elems_sent\":{},\"bytes_sent\":{},\"batches_sent\":{},\
                 \"elems_recv\":{},\"bytes_recv\":{},\"batches_recv\":{},\
                 \"credit_samples\":{},\"credit_outstanding_sum\":{},\"credit_window\":{}}}",
                m.elems_sent,
                m.bytes_sent,
                m.batches_sent,
                m.elems_recv,
                m.bytes_recv,
                m.batches_recv,
                m.credit_samples,
                m.credit_outstanding_sum,
                m.credit_window,
            );
        }
        out.push_str("\n]}\n}\n");
        out
    }
}

/// What [`validate_chrome`] found in a structurally valid trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeStats {
    /// `"ph":"X"` complete events.
    pub spans: usize,
    /// `"ph":"M"` metadata events.
    pub metadata: usize,
    /// Entries in the `"streamprof"` stream table.
    pub streams: usize,
}

/// Structural check of [`Trace::to_chrome_json`] output, for schema tests
/// on backends whose timings are not reproducible (the native backend):
/// verifies the object framing, that every event line carries the keys
/// Chrome requires, and that `ts`/`dur` parse as non-negative decimals.
pub fn validate_chrome(json: &str) -> Result<ChromeStats, String> {
    let mut stats = ChromeStats::default();
    let mut lines = json.lines();
    let mut expect = |want: &str| -> Result<(), String> {
        match lines.next() {
            Some(l) if l == want => Ok(()),
            other => Err(format!("expected {want:?}, got {other:?}")),
        }
    };
    expect("{")?;
    expect("\"traceEvents\":[")?;
    let mut in_streams = false;
    for line in lines {
        let event = line.strip_suffix(',').unwrap_or(line);
        if event == "]" {
            continue;
        }
        if event == "\"displayTimeUnit\":\"ms\"" {
            continue;
        }
        if let Some(rest) = event.strip_prefix("\"streamprof\":{") {
            if !rest.contains("\"clock\":\"virtual\"") && !rest.contains("\"clock\":\"wall\"") {
                return Err(format!("bad clock domain in {event:?}"));
            }
            in_streams = true;
            continue;
        }
        if event == "]}" || event == "}" || event.is_empty() {
            continue;
        }
        if !event.starts_with('{') || !event.ends_with('}') {
            return Err(format!("unframed event line {event:?}"));
        }
        if in_streams {
            for key in ["\"pid\":", "\"channel\":", "\"elems_sent\":", "\"elems_recv\":"] {
                if !event.contains(key) {
                    return Err(format!("stream entry missing {key} in {event:?}"));
                }
            }
            stats.streams += 1;
        } else if event.contains("\"ph\":\"M\"") {
            for key in ["\"name\":", "\"pid\":", "\"tid\":", "\"args\":"] {
                if !event.contains(key) {
                    return Err(format!("metadata event missing {key} in {event:?}"));
                }
            }
            stats.metadata += 1;
        } else if event.contains("\"ph\":\"X\"") {
            for key in ["\"name\":", "\"cat\":", "\"pid\":", "\"tid\":", "\"ts\":", "\"dur\":"] {
                if !event.contains(key) {
                    return Err(format!("span event missing {key} in {event:?}"));
                }
            }
            for key in ["\"ts\":", "\"dur\":"] {
                let at = event.find(key).unwrap() + key.len();
                let val: String =
                    event[at..].chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
                if val.parse::<f64>().map_or(true, |v| !v.is_finite() || v < 0.0) {
                    return Err(format!("bad {key} value {val:?} in {event:?}"));
                }
            }
            stats.spans += 1;
        } else {
            return Err(format!("event of unknown phase {event:?}"));
        }
    }
    if !in_streams {
        return Err("missing streamprof section".into());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Clock, ProfSink};
    use desim::SimTime;

    fn trace() -> Trace {
        let sink = ProfSink::new(Clock::Virtual);
        sink.record_span(0, "compute", SimTime(0), SimTime(1_500));
        sink.record_span(1, "wait-data", SimTime(0), SimTime(1_000));
        sink.record_span(1, "compute", SimTime(1_000), SimTime(2_000));
        sink.stream_send(0, 0, 10, 80);
        sink.stream_recv(1, 0, 10, 80);
        sink.take()
    }

    #[test]
    fn exporter_emits_exact_decimal_timestamps() {
        let json = trace().to_chrome_json();
        // 1500 ns = 1.500 us, printed exactly — never float-formatted.
        assert!(json.contains("\"ts\":0.000,\"dur\":1.500"), "{json}");
        assert!(json.contains("\"ts\":1.000,\"dur\":1.000"), "{json}");
        assert!(json.contains("\"clock\":\"virtual\""));
    }

    #[test]
    fn validator_accepts_own_output_and_counts_events() {
        let json = trace().to_chrome_json();
        let stats = validate_chrome(&json).unwrap();
        assert_eq!(stats, ChromeStats { spans: 3, metadata: 2, streams: 2 });
    }

    #[test]
    fn validator_rejects_tampered_output() {
        let json = trace().to_chrome_json();
        assert!(validate_chrome(&json.replace("\"ts\":", "\"t\":")).is_err());
        assert!(validate_chrome(&json.replace("\"clock\":\"virtual\"", "\"clock\":\"?\"")).is_err());
        assert!(validate_chrome("{}").is_err());
    }

    #[test]
    fn micros_formats_integer_nanos_exactly() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000), "1.000");
        assert_eq!(micros(1_234_567), "1234.567");
    }
}

//! Fitting the paper's Eq. 4 parameters from a recorded trace.
//!
//! Eq. 4 predicts the decoupled makespan as
//! `Td = β(S)·(T_W0/(1−α) + Tσ + D/S·o) + T'_W1`. Given a [`Trace`], the
//! estimators here recover the ingredients directly:
//!
//! - producers/consumers are identified from the stream counters
//!   (`elems_sent > 0` / `elems_recv > 0`),
//! - the *inflated* compute term `T_W0/(1−α)` is the producers' mean
//!   `"compute"` time (the trace records what actually ran on the
//!   shrunken group, inflation included),
//! - the imbalance `Tσ` is max − mean of producer compute (the paper's
//!   idle-at-the-barrier penalty),
//! - the per-element overhead `o` is total producer `"send"` time over
//!   total elements sent (`D/S·o` is then `o · E` per producer),
//! - `T'_W1` is the consumers' maximum `"compute"` time,
//! - the *effective* pipelining fraction `β_eff` then falls out of Eq. 4
//!   solved for β: `(makespan − T'_W1) / (T_W0' + Tσ + o·Ē)`.
//!
//! Repeating the fit over a granularity sweep yields `(S, β_eff)` points;
//! [`fit_beta_curve`] grid-searches the `perfmodel` β(S) family through
//! them. On noiseless synthetic traces ([`crate::synthesize`]) the
//! estimators recover `o`, `β`, and `Tσ` to better than 0.1% (see the
//! tests); on simulator traces the residual against
//! [`perfmodel::Scenario::predict`] is reported by [`residual`].

use perfmodel::{Beta, Scenario};

use crate::trace::Trace;

/// Eq. 4 ingredients recovered from one trace (all times in seconds on
/// the trace's clock).
#[derive(Clone, Debug)]
pub struct FitReport {
    /// Ranks that sent stream elements, ascending.
    pub producers: Vec<usize>,
    /// Ranks that received stream elements, ascending.
    pub consumers: Vec<usize>,
    /// Mean elements sent per producer (`D/S` per producer).
    pub elems_mean: f64,
    /// Mean producer compute time — the inflated `T_W0/(1−α)` term.
    pub t_w0_inflated: f64,
    /// Imbalance: max − mean producer compute time.
    pub t_sigma: f64,
    /// Per-element overhead: total producer send time / elements sent.
    pub overhead_o: f64,
    /// Decoupled operation time: max consumer compute time.
    pub t_w1: f64,
    /// End-to-end recorded time.
    pub makespan: f64,
    /// Effective non-overlap fraction (Eq. 4 solved for β), in [0, 1].
    pub beta_eff: f64,
}

/// Recover the Eq. 4 ingredients from `trace`. `None` when the trace has
/// no identifiable producers or consumers (no stream counters), or no
/// elements moved.
pub fn fit(trace: &Trace) -> Option<FitReport> {
    let mut sent: std::collections::BTreeMap<usize, u64> = Default::default();
    let mut recvd: std::collections::BTreeMap<usize, u64> = Default::default();
    for (&(pid, _chan), m) in trace.streams() {
        if m.elems_sent > 0 {
            *sent.entry(pid).or_default() += m.elems_sent;
        }
        if m.elems_recv > 0 {
            *recvd.entry(pid).or_default() += m.elems_recv;
        }
    }
    let producers: Vec<usize> = sent.keys().copied().collect();
    let consumers: Vec<usize> = recvd.keys().copied().collect();
    if producers.is_empty() || consumers.is_empty() {
        return None;
    }
    let totals = trace.totals_by_cat();
    let time = |pid: usize, cat: &'static str| totals.get(&(pid, cat)).copied().unwrap_or(0.0);

    let compute: Vec<f64> = producers.iter().map(|&p| time(p, "compute")).collect();
    let t_w0_inflated = compute.iter().sum::<f64>() / compute.len() as f64;
    let t_sigma = compute.iter().cloned().fold(0.0f64, f64::max) - t_w0_inflated;

    let send_total: f64 = producers.iter().map(|&p| time(p, "send")).sum();
    let elems_total: u64 = sent.values().sum();
    if elems_total == 0 {
        return None;
    }
    let overhead_o = send_total / elems_total as f64;
    let elems_mean = elems_total as f64 / producers.len() as f64;

    let t_w1 = consumers.iter().map(|&c| time(c, "compute")).fold(0.0f64, f64::max);
    let makespan = trace.makespan_secs();
    let denom = t_w0_inflated + t_sigma + overhead_o * elems_mean;
    let beta_eff = if denom > 0.0 { ((makespan - t_w1) / denom).clamp(0.0, 1.0) } else { 0.0 };

    Some(FitReport {
        producers,
        consumers,
        elems_mean,
        t_w0_inflated,
        t_sigma,
        overhead_o,
        t_w1,
        makespan,
        beta_eff,
    })
}

/// Grid-search the `perfmodel` β(S) curve through measured
/// `(granularity_bytes, beta_eff)` points (same grid as
/// `perfmodel::fit::fit_beta`). Returns the curve and its sum of squared
/// errors.
pub fn fit_beta_curve(points: &[(f64, f64)]) -> (Beta, f64) {
    assert!(!points.is_empty(), "need at least one (S, beta) point");
    let mut best = (Beta::new(0.5, 1e6), f64::INFINITY);
    for ib in 0..=20 {
        let beta_min = ib as f64 / 20.0;
        for is in 0..=40 {
            // s0 from 1 byte to 1 GB, log-spaced.
            let s0 = 10f64.powf(is as f64 * 9.0 / 40.0);
            let candidate = Beta::new(beta_min, s0);
            let err: f64 = points
                .iter()
                .map(|&(s, b)| {
                    let e = candidate.at(s) - b;
                    e * e
                })
                .sum();
            if err < best.1 {
                best = (candidate, err);
            }
        }
    }
    best
}

/// Measured makespan against the model's prediction for the same
/// configuration.
#[derive(Clone, Copy, Debug)]
pub struct ModelResidual {
    pub predicted: f64,
    pub measured: f64,
}

impl ModelResidual {
    /// |measured − predicted| / predicted.
    pub fn rel_err(&self) -> f64 {
        (self.measured - self.predicted).abs() / self.predicted.max(f64::MIN_POSITIVE)
    }
}

/// Residual of `trace`'s makespan against [`Scenario::predict`] at
/// `(alpha, s)`.
pub fn residual(scn: &Scenario, alpha: f64, s: f64, trace: &Trace) -> ModelResidual {
    ModelResidual { predicted: scn.predict(alpha, s), measured: trace.makespan_secs() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthSpec};

    fn spec() -> SynthSpec {
        SynthSpec {
            producers: 8,
            consumers: 2,
            elements_per_producer: 1000,
            element_bytes: 64,
            t_w0: 5.0,
            t_w1: 3.0,
            t_sigma: 0.4,
            overhead_o: 2e-6,
            beta: 0.5,
        }
    }

    /// Documented tolerance: on noiseless synthetic traces the fitter
    /// recovers o, β, and Tσ to better than 0.1% (the only error source
    /// is integer-nanosecond rounding in the trace itself).
    #[test]
    fn fit_recovers_synthetic_parameters() {
        let spec = spec();
        let trace = synthesize(&spec);
        let fit = fit(&trace).expect("synthetic trace has both roles");
        assert_eq!(fit.producers.len(), 8);
        assert_eq!(fit.consumers.len(), 2);
        assert_eq!(fit.elems_mean, 1000.0);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(f64::MIN_POSITIVE);
        assert!(rel(fit.overhead_o, spec.overhead_o) < 1e-3, "o: {fit:?}");
        assert!(rel(fit.t_sigma, spec.t_sigma) < 1e-3, "t_sigma: {fit:?}");
        assert!(rel(fit.beta_eff, spec.beta) < 1e-3, "beta: {fit:?}");
        assert!(rel(fit.t_w1, spec.t_w1) < 1e-3, "t_w1: {fit:?}");
        // The recovered compute term is the producers' mean, which sits
        // Tσ/(P−1) above the nominal t_w0 by construction.
        assert!(rel(fit.t_w0_inflated, spec.t_w0 + spec.t_sigma / 7.0) < 1e-3, "t_w0: {fit:?}");
    }

    #[test]
    fn fit_beta_curve_recovers_the_generating_curve() {
        let truth = Beta::new(0.2, 1e5);
        // A granularity sweep: one synthetic trace per element size, each
        // generated with the true curve's β at that S.
        let points: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                let element_bytes = 1u64 << (8 + i); // 256 B .. 128 KiB
                let s = element_bytes as f64;
                let spec = SynthSpec {
                    beta: truth.at(s),
                    element_bytes,
                    t_w1: 6.0, // large enough that every β stays realizable
                    ..spec()
                };
                let fit = fit(&synthesize(&spec)).unwrap();
                (s, fit.beta_eff)
            })
            .collect();
        let (fitted, err) = fit_beta_curve(&points);
        assert!(err < 5e-3, "sse {err}");
        assert!((fitted.beta_min - truth.beta_min).abs() <= 0.05, "{fitted:?}");
    }

    #[test]
    fn residual_is_tiny_when_the_model_generated_the_trace() {
        let spec = spec();
        let trace = synthesize(&spec);
        // A Scenario that encodes exactly the synthetic run: α chosen so
        // the inflated compute equals the producers' mean, β constant.
        let fit = fit(&trace).unwrap();
        let scn = Scenario {
            t_w0: fit.t_w0_inflated, // already inflated: use α → 0
            t_w1: fit.t_w1,
            complexity: perfmodel::Complexity::PowerP { gamma: 0.0 }, // no rescale
            t_sigma: fit.t_sigma,
            data_d: spec.elements_per_producer * spec.element_bytes,
            overhead_o: fit.overhead_o,
            p: spec.producers + spec.consumers,
            beta: Beta::new(spec.beta, 1e30), // s0 ≫ S: β(S) ≈ β_min, constant
            op1_optimization: 1.0,
        };
        let r = residual(&scn, 1e-9, spec.element_bytes as f64, &trace);
        assert!(r.rel_err() < 0.01, "predicted {} vs measured {}", r.predicted, r.measured);
    }

    #[test]
    fn fit_returns_none_without_stream_counters() {
        let sink = crate::ProfSink::new(crate::Clock::Virtual);
        sink.record_span(0, "compute", desim::SimTime(0), desim::SimTime(100));
        assert!(fit(&sink.take()).is_none());
    }
}

//! # streamprof — backend-agnostic observability for stream programs
//!
//! Figure 2 of the paper is an HPCToolkit *trace*: observability is how
//! the decoupling strategy is demonstrated. This crate is that instrument
//! for `mpistream` programs, working identically over every
//! [`Transport`](mpistream::Transport) backend:
//!
//! - [`ProfSink`] — a shared span/counter recorder. Clone one per rank;
//!   spans carry the backend's own clock ([`Clock::Virtual`] nanoseconds
//!   on the simulator, [`Clock::Wall`] monotonic nanoseconds on the
//!   native threaded backend).
//! - [`Profiled`] — a transparent `Transport` wrapper that times every
//!   call: `compute`, `send`, blocking receives (classified into
//!   *wait-for-data* vs *wait-for-credit* from the wire tag alone), and
//!   the collective subset. Stream-level counters (elements/bytes,
//!   credit-window occupancy) arrive through the `prof_*` hooks the
//!   stream runtime invokes on any transport.
//! - [`Trace`] — the finished recording: per-rank stall breakdowns
//!   ([`StallBreakdown`]), per-stream [`StreamMetrics`], and exporters —
//!   `chrome://tracing` JSON ([`Trace::to_chrome_json`]), CSV, and the
//!   ASCII Gantt chart (byte-compatible with `desim`'s, so the
//!   simulator-only renderer is subsumed; [`Trace::from_desim`] adapts an
//!   existing `desim::Trace`).
//! - [`fit`] — estimators that recover the paper's Eq. 4 parameters
//!   (per-element overhead `o`, pipelining fraction β(S), imbalance Tσ)
//!   from a recorded trace and report the residual against the
//!   `perfmodel` prediction; [`synth`] generates traces from known
//!   parameters to validate the estimators.
//!
//! ## Profiling a stream program
//!
//! ```
//! use mpisim::{MachineConfig, World};
//! use mpistream::{run_decoupled, ChannelConfig, GroupSpec, Transport};
//! use streamprof::{Clock, ProfSink, Profiled};
//!
//! let sink = ProfSink::new(Clock::Virtual);
//! let s2 = sink.clone();
//! let world = World::new(MachineConfig::default());
//! world.run_expect(8, move |rank| {
//!     let mut rank = Profiled::new(rank, s2.clone());
//!     let comm = rank.world_group();
//!     run_decoupled::<u64, _, _, _>(
//!         &mut rank,
//!         &comm,
//!         GroupSpec { every: 8 },
//!         ChannelConfig::default(),
//!         |rank, p| {
//!             for step in 0..10 {
//!                 rank.compute(1e-4);
//!                 p.stream.isend(rank, step);
//!             }
//!         },
//!         |rank, c| {
//!             c.stream.operate(rank, |_, _w| {});
//!         },
//!     );
//! });
//! let trace = sink.take();
//! assert!(!trace.spans().is_empty());
//! let json = trace.to_chrome_json();
//! streamprof::validate_chrome(&json).unwrap();
//! ```

pub mod chrome;
pub mod fit;
pub mod profiled;
pub mod sink;
pub mod synth;
pub mod trace;

pub use chrome::{validate_chrome, ChromeStats};
pub use fit::{fit, fit_beta_curve, residual, FitReport, ModelResidual};
pub use profiled::Profiled;
pub use sink::{Clock, ProfSink, Span, StreamMetrics};
pub use synth::{synthesize, SynthSpec};
pub use trace::{StallBreakdown, Trace};

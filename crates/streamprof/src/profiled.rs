//! A transparent [`Transport`] wrapper that times every call.

use desim::SimTime;
use mpistream::transport::{MsgInfo, Src, Tag, TagKind, Transport};
use mpistream::Wire;

use crate::sink::ProfSink;

/// Wraps any [`Transport`] and records a span around every potentially
/// time-consuming call, on the *inner backend's own clock* — virtual
/// nanoseconds in the simulator (where the extra `now()` reads are pure
/// and perturb nothing), monotonic wall nanoseconds natively.
///
/// Span categories: `"compute"`, `"send"`, `"coll"` (every collective),
/// `"wait-mail"`, and — for blocking receives, classified from the wire
/// tag alone ([`Tag::kind`]) — `"wait-data"` (starved consumer),
/// `"wait-credit"` (back-pressured producer), or `"recv"` (anything
/// else). Non-blocking calls (`try_recv`, `probe`) are never spanned.
/// The `prof_*` hooks the stream runtime invokes on every transport are
/// intercepted here: named application spans (`prof_begin`/`prof_end`)
/// land on the timeline, stream counters land in [`StreamMetrics`]
/// (see [`crate::StreamMetrics`]).
pub struct Profiled<'a, T: Transport> {
    inner: &'a mut T,
    sink: ProfSink,
    pid: usize,
    /// Open application spans (`prof_begin` without a `prof_end` yet).
    open: Vec<(&'static str, SimTime)>,
}

impl<'a, T: Transport> Profiled<'a, T> {
    pub fn new(inner: &'a mut T, sink: ProfSink) -> Self {
        let pid = inner.world_rank();
        Profiled { inner, sink, pid, open: Vec::new() }
    }

    /// The sink this wrapper records into.
    pub fn sink(&self) -> &ProfSink {
        &self.sink
    }

    /// Escape hatch to the wrapped backend (calls made through it are
    /// not profiled).
    pub fn inner(&mut self) -> &mut T {
        self.inner
    }

    fn span<R>(&mut self, cat: &'static str, f: impl FnOnce(&mut T) -> R) -> R {
        let start = self.inner.now();
        let r = f(self.inner);
        let end = self.inner.now();
        self.sink.record_span(self.pid, cat, start, end);
        r
    }
}

/// Category of a blocking receive, from the tag alone.
fn recv_cat(tag: Tag) -> &'static str {
    match tag.kind() {
        TagKind::StreamData { .. } => "wait-data",
        TagKind::StreamCredit { .. } => "wait-credit",
        _ => "recv",
    }
}

impl<'a, T: Transport> Transport for Profiled<'a, T> {
    type Group = T::Group;

    fn world_rank(&self) -> usize {
        self.inner.world_rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn world_group(&self) -> Self::Group {
        self.inner.world_group()
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn compute(&mut self, secs: f64) {
        self.span("compute", |t| t.compute(secs));
    }

    fn send<V: Wire + Send + 'static>(&mut self, dst: usize, tag: Tag, bytes: u64, value: V) {
        self.span("send", |t| t.send(dst, tag, bytes, value));
    }

    fn recv<V: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> (V, MsgInfo) {
        self.span(recv_cat(tag), |t| t.recv(src, tag))
    }

    fn try_recv<V: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> Option<(V, MsgInfo)> {
        self.inner.try_recv(src, tag)
    }

    fn recv_deadline<V: Wire + Send + 'static>(
        &mut self,
        src: Src,
        tag: Tag,
        deadline: SimTime,
    ) -> Option<(V, MsgInfo)> {
        self.span(recv_cat(tag), |t| t.recv_deadline(src, tag, deadline))
    }

    fn probe(&mut self, src: Src, tag: Tag) -> Option<MsgInfo> {
        self.inner.probe(src, tag)
    }

    fn wait_for_mail(&mut self) {
        self.span("wait-mail", |t| t.wait_for_mail());
    }

    fn barrier(&mut self, group: &Self::Group) {
        self.span("coll", |t| t.barrier(group));
    }

    fn allreduce<V: Wire + Clone + Send + 'static>(
        &mut self,
        group: &Self::Group,
        bytes: u64,
        value: V,
        op: impl Fn(&mut V, &V),
    ) -> V {
        self.span("coll", |t| t.allreduce(group, bytes, value, op))
    }

    fn allgatherv<V: Wire + Clone + Send + 'static>(
        &mut self,
        group: &Self::Group,
        bytes: u64,
        value: V,
    ) -> Vec<V> {
        self.span("coll", |t| t.allgatherv(group, bytes, value))
    }

    fn bcast<V: Wire + Clone + Send + 'static>(
        &mut self,
        group: &Self::Group,
        root: usize,
        bytes: u64,
        value: Option<V>,
    ) -> V {
        self.span("coll", |t| t.bcast(group, root, bytes, value))
    }

    fn split(&mut self, group: &Self::Group, color: Option<i64>, key: i64) -> Option<Self::Group> {
        self.span("coll", |t| t.split(group, color, key))
    }

    fn alloc_channel_id(&mut self) -> u16 {
        self.inner.alloc_channel_id()
    }

    // Sanitizer hooks pass straight through, so a profiled sim rank keeps
    // its happens-before checking.
    fn check_register_channel(&mut self, id: u16, window: Option<u64>, credit_tag: Tag) {
        self.inner.check_register_channel(id, window, credit_tag);
    }

    fn check_data_sent(&mut self, id: u16, consumer: usize, elems: u64) {
        self.inner.check_data_sent(id, consumer, elems);
    }

    fn check_credit_issued(&mut self, id: u16, producer: usize, elems: u64) {
        self.inner.check_credit_issued(id, producer, elems);
    }

    fn prof_begin(&mut self, cat: &'static str) {
        self.open.push((cat, self.inner.now()));
    }

    fn prof_end(&mut self, cat: &'static str) {
        let i = self
            .open
            .iter()
            .rposition(|&(c, _)| c == cat)
            .unwrap_or_else(|| panic!("prof_end({cat:?}) without a matching prof_begin"));
        let (_, start) = self.open.remove(i);
        let end = self.inner.now();
        self.sink.record_span(self.pid, cat, start, end);
    }

    fn prof_stream_send(&mut self, channel: u16, elems: u64, bytes: u64) {
        self.sink.stream_send(self.pid, channel, elems, bytes);
    }

    fn prof_stream_recv(&mut self, channel: u16, elems: u64, bytes: u64) {
        self.sink.stream_recv(self.pid, channel, elems, bytes);
    }

    fn prof_credit_occupancy(&mut self, channel: u16, outstanding: u64, window: u64) {
        self.sink.credit_sample(self.pid, channel, outstanding, window);
    }

    fn prof_repl_commit(&mut self, channel: u16, bytes: u64, latency_ns: u64) {
        self.sink.repl_commit(self.pid, channel, bytes, latency_ns);
    }
}

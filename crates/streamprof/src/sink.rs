//! The span/counter recorder shared by all ranks of one profiled run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use desim::SimTime;
use parking_lot::Mutex;

use crate::trace::Trace;

/// Which clock the recorded timestamps live on. Nanosecond instants in
/// both cases; the *meaning* belongs to the backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Clock {
    /// Deterministic virtual time (the simulator backend).
    Virtual,
    /// Monotonic wall clock since the world's epoch (the native backend).
    Wall,
}

impl Clock {
    pub fn label(self) -> &'static str {
        match self {
            Clock::Virtual => "virtual",
            Clock::Wall => "wall",
        }
    }
}

/// One recorded interval on one rank's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// World rank the span belongs to.
    pub pid: usize,
    /// Category: `"compute"`, `"send"`, `"wait-data"`, `"wait-credit"`,
    /// `"recv"`, `"wait-mail"`, `"coll"`, or an application name opened
    /// via `prof_begin`.
    pub cat: &'static str,
    pub start: SimTime,
    pub end: SimTime,
}

impl Span {
    pub fn secs(&self) -> f64 {
        self.end.since(self.start).as_secs_f64()
    }
}

/// Per-`(rank, channel)` stream counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamMetrics {
    /// Elements / payload bytes / wire batches this rank sent on the
    /// channel.
    pub elems_sent: u64,
    pub bytes_sent: u64,
    pub batches_sent: u64,
    /// Elements / payload bytes / wire batches this rank received.
    pub elems_recv: u64,
    pub bytes_recv: u64,
    pub batches_recv: u64,
    /// Credit-window occupancy, sampled once per credited send: how many
    /// elements were outstanding (un-acknowledged) right after the send,
    /// out of a window of `credit_window`.
    pub credit_samples: u64,
    pub credit_outstanding_sum: u64,
    pub credit_window: u64,
    /// Replication checkpoints this rank committed as a replica-group
    /// primary (see `crates/replica`), the checkpoint bytes shipped, and
    /// the summed prepare→commit latency.
    pub repl_commits: u64,
    pub repl_bytes: u64,
    pub repl_latency_sum_ns: u64,
}

impl StreamMetrics {
    /// Mean credit-window occupancy over all samples, as a fraction of
    /// the window (0 when the channel is uncredited). Near 1.0 means the
    /// producer keeps slamming into the window — the stream is
    /// back-pressure-bound.
    pub fn credit_occupancy(&self) -> f64 {
        if self.credit_samples == 0 || self.credit_window == 0 {
            return 0.0;
        }
        self.credit_outstanding_sum as f64 / self.credit_samples as f64 / self.credit_window as f64
    }

    /// Mean prepare→commit latency per replicated checkpoint, in seconds
    /// (0 when the rank never acted as a replica-group primary). The
    /// replication tax the paper's decoupling does *not* model: what one
    /// durable credit costs over a plain one.
    pub fn repl_commit_latency(&self) -> f64 {
        if self.repl_commits == 0 {
            return 0.0;
        }
        self.repl_latency_sum_ns as f64 / self.repl_commits as f64 / 1e9
    }
}

#[derive(Default)]
struct SinkInner {
    spans: Vec<Span>,
    streams: BTreeMap<(usize, u16), StreamMetrics>,
}

struct SinkShared {
    // Relaxed-atomic gate so a disabled sink never touches the mutex
    // (mirrors `desim::TraceSink`); unlike there, profiling can be
    // toggled mid-run to scope recording to a phase of interest.
    enabled: AtomicBool,
    clock: Clock,
    inner: Mutex<SinkInner>,
}

/// Shared trace recorder: clone one handle per rank (clones record into
/// the same trace), wrap each rank in [`crate::Profiled`], and call
/// [`ProfSink::take`] after the run.
#[derive(Clone)]
pub struct ProfSink {
    shared: Arc<SinkShared>,
}

impl ProfSink {
    pub fn new(clock: Clock) -> Self {
        ProfSink {
            shared: Arc::new(SinkShared {
                enabled: AtomicBool::new(true),
                clock,
                inner: Mutex::new(SinkInner::default()),
            }),
        }
    }

    pub fn clock(&self) -> Clock {
        self.shared.clock
    }

    pub fn enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Toggle recording (e.g. profile only a phase of interest). Counters
    /// and spans are both gated.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.store(on, Ordering::Relaxed);
    }

    pub fn record_span(&self, pid: usize, cat: &'static str, start: SimTime, end: SimTime) {
        if self.enabled() {
            self.shared.inner.lock().spans.push(Span { pid, cat, start, end });
        }
    }

    pub fn stream_send(&self, pid: usize, channel: u16, elems: u64, bytes: u64) {
        if self.enabled() {
            let mut inner = self.shared.inner.lock();
            let m = inner.streams.entry((pid, channel)).or_default();
            m.elems_sent += elems;
            m.bytes_sent += bytes;
            m.batches_sent += 1;
        }
    }

    pub fn stream_recv(&self, pid: usize, channel: u16, elems: u64, bytes: u64) {
        if self.enabled() {
            let mut inner = self.shared.inner.lock();
            let m = inner.streams.entry((pid, channel)).or_default();
            m.elems_recv += elems;
            m.bytes_recv += bytes;
            m.batches_recv += 1;
        }
    }

    pub fn credit_sample(&self, pid: usize, channel: u16, outstanding: u64, window: u64) {
        if self.enabled() {
            let mut inner = self.shared.inner.lock();
            let m = inner.streams.entry((pid, channel)).or_default();
            m.credit_samples += 1;
            m.credit_outstanding_sum += outstanding;
            m.credit_window = window;
        }
    }

    pub fn repl_commit(&self, pid: usize, channel: u16, bytes: u64, latency_ns: u64) {
        if self.enabled() {
            let mut inner = self.shared.inner.lock();
            let m = inner.streams.entry((pid, channel)).or_default();
            m.repl_commits += 1;
            m.repl_bytes += bytes;
            m.repl_latency_sum_ns += latency_ns;
        }
    }

    /// Drain the recording into a [`Trace`]. Spans are sorted by
    /// `(pid, start, end, cat)` so the result is deterministic regardless
    /// of the interleaving that produced it.
    pub fn take(&self) -> Trace {
        let mut inner = self.shared.inner.lock();
        let mut spans = std::mem::take(&mut inner.spans);
        let streams = std::mem::take(&mut inner.streams);
        spans.sort_by_key(|s| (s.pid, s.start.as_nanos(), s.end.as_nanos(), s.cat));
        Trace::new(self.shared.clock, spans, streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = ProfSink::new(Clock::Virtual);
        sink.set_enabled(false);
        sink.record_span(0, "compute", SimTime(0), SimTime(10));
        sink.stream_send(0, 1, 5, 40);
        assert!(sink.take().is_empty());
        sink.set_enabled(true);
        sink.record_span(0, "compute", SimTime(0), SimTime(10));
        assert_eq!(sink.take().spans().len(), 1);
    }

    #[test]
    fn stream_counters_accumulate_per_rank_and_channel() {
        let sink = ProfSink::new(Clock::Virtual);
        sink.stream_send(0, 3, 10, 80);
        sink.stream_send(0, 3, 6, 48);
        sink.stream_recv(2, 3, 16, 128);
        sink.credit_sample(0, 3, 12, 16);
        sink.credit_sample(0, 3, 4, 16);
        sink.repl_commit(2, 3, 96, 2_000_000_000);
        sink.repl_commit(2, 3, 32, 1_000_000_000);
        let trace = sink.take();
        let p = &trace.streams()[&(0, 3)];
        assert_eq!((p.elems_sent, p.bytes_sent, p.batches_sent), (16, 128, 2));
        assert_eq!(p.credit_samples, 2);
        assert!((p.credit_occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(p.repl_commit_latency(), 0.0);
        let c = &trace.streams()[&(2, 3)];
        assert_eq!((c.elems_recv, c.bytes_recv, c.batches_recv), (16, 128, 1));
        assert_eq!(c.credit_occupancy(), 0.0);
        assert_eq!((c.repl_commits, c.repl_bytes), (2, 128));
        assert!((c.repl_commit_latency() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn take_sorts_spans_deterministically() {
        let sink = ProfSink::new(Clock::Wall);
        sink.record_span(1, "b", SimTime(5), SimTime(9));
        sink.record_span(0, "z", SimTime(7), SimTime(8));
        sink.record_span(1, "a", SimTime(5), SimTime(9));
        let trace = sink.take();
        let order: Vec<(usize, &str)> = trace.spans().iter().map(|s| (s.pid, s.cat)).collect();
        assert_eq!(order, vec![(0, "z"), (1, "a"), (1, "b")]);
        assert_eq!(trace.clock(), Clock::Wall);
    }
}

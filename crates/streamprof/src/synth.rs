//! Synthetic traces generated *from* the performance model, with known
//! parameters — the ground truth the [`crate::fit`] estimators are
//! validated against.

use desim::SimTime;

use crate::sink::{Clock, ProfSink};
use crate::trace::Trace;

/// Known Eq. 4 parameters to generate a trace from.
#[derive(Clone, Copy, Debug)]
pub struct SynthSpec {
    /// Producer ranks `0..producers`.
    pub producers: usize,
    /// Consumer ranks `producers..producers+consumers`.
    pub consumers: usize,
    pub elements_per_producer: u64,
    /// Granularity `S` (bytes per element).
    pub element_bytes: u64,
    /// Nominal per-producer compute time (s); the slowest producer runs
    /// longer so that max − mean equals `t_sigma` exactly.
    pub t_w0: f64,
    /// Consumer busy time at the tail (s).
    pub t_w1: f64,
    /// Imbalance: max − mean producer compute (s). Needs ≥ 2 producers.
    pub t_sigma: f64,
    /// Per-element send overhead (s).
    pub overhead_o: f64,
    /// Non-overlap fraction in [0, 1].
    pub beta: f64,
}

/// Generate the trace of an idealized decoupled run obeying Eq. 4 with
/// the spec's parameters: every producer computes then sends, the last
/// producer carries the imbalance, and the consumers finish at
/// `makespan = β·(mean_compute + Tσ + o·E) + T_W1`.
///
/// Panics if the spec is not realizable — the modelled makespan must not
/// undercut the slowest producer's own finish time (raise `beta` or
/// `t_w1` if it does), and `t_sigma > 0` needs at least two producers.
pub fn synthesize(spec: &SynthSpec) -> Trace {
    assert!(spec.producers >= 1 && spec.consumers >= 1);
    assert!((0.0..=1.0).contains(&spec.beta));
    assert!(
        spec.t_sigma == 0.0 || spec.producers >= 2,
        "imbalance needs at least two producers (max == mean with one)"
    );
    let p = spec.producers;
    let e = spec.elements_per_producer;
    // The slowest producer's surplus x satisfies max − mean = Tσ:
    // x − x/P = Tσ, i.e. x = Tσ·P/(P−1).
    let x = if p > 1 { spec.t_sigma * p as f64 / (p - 1) as f64 } else { 0.0 };
    let mean_c = spec.t_w0 + x / p as f64;
    let send_secs = spec.overhead_o * e as f64;
    let makespan = spec.beta * (mean_c + spec.t_sigma + send_secs) + spec.t_w1;
    let slowest_end = spec.t_w0 + x + send_secs;
    assert!(
        makespan >= slowest_end,
        "spec not realizable: modelled makespan {makespan:.6}s undercuts the slowest \
         producer's finish {slowest_end:.6}s — raise beta or t_w1"
    );
    let at = |secs: f64| SimTime((secs * 1e9).round() as u64);

    let sink = ProfSink::new(Clock::Virtual);
    for pid in 0..p {
        let c = spec.t_w0 + if pid == p - 1 { x } else { 0.0 };
        sink.record_span(pid, "compute", SimTime::ZERO, at(c));
        sink.record_span(pid, "send", at(c), at(c + send_secs));
        sink.stream_send(pid, 0, e, e * spec.element_bytes);
    }
    let total = e * p as u64;
    let share = total / spec.consumers as u64;
    for i in 0..spec.consumers {
        let pid = p + i;
        // Last consumer takes the division remainder.
        let elems = if i == spec.consumers - 1 {
            total - share * (spec.consumers as u64 - 1)
        } else {
            share
        };
        sink.record_span(pid, "wait-data", SimTime::ZERO, at(makespan - spec.t_w1));
        sink.record_span(pid, "compute", at(makespan - spec.t_w1), at(makespan));
        sink.stream_recv(pid, 0, elems, elems * spec.element_bytes);
    }
    sink.take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_has_the_advertised_shape() {
        let spec = SynthSpec {
            producers: 4,
            consumers: 1,
            elements_per_producer: 100,
            element_bytes: 8,
            t_w0: 1.0,
            t_w1: 0.8,
            t_sigma: 0.2,
            overhead_o: 1e-5,
            beta: 0.7,
        };
        let trace = synthesize(&spec);
        // 2 spans per rank, plus one counter entry each.
        assert_eq!(trace.spans().len(), 10);
        assert_eq!(trace.streams().len(), 5);
        // Imbalance shows up as the last producer computing longer.
        let totals = trace.totals_by_cat();
        let c0 = totals[&(0, "compute")];
        let c3 = totals[&(3, "compute")];
        assert!(c3 > c0);
        // max − mean == t_sigma by construction.
        let mean = (3.0 * c0 + c3) / 4.0;
        assert!((c3 - mean - spec.t_sigma).abs() < 1e-9);
        // The consumer is the tail of the timeline.
        let expected = spec.beta * (mean + spec.t_sigma + 1e-5 * 100.0) + spec.t_w1;
        assert!((trace.makespan_secs() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not realizable")]
    fn unrealizable_spec_panics() {
        // β ≈ 0 with a tiny t_w1: the consumer would finish before the
        // slowest producer even starts sending.
        synthesize(&SynthSpec {
            producers: 2,
            consumers: 1,
            elements_per_producer: 10,
            element_bytes: 8,
            t_w0: 1.0,
            t_w1: 0.01,
            t_sigma: 0.5,
            overhead_o: 1e-6,
            beta: 0.0,
        });
    }

    #[test]
    fn remainder_elements_go_to_the_last_consumer() {
        let trace = synthesize(&SynthSpec {
            producers: 3,
            consumers: 2,
            elements_per_producer: 5, // 15 total: 7 + 8
            element_bytes: 8,
            t_w0: 1.0,
            t_w1: 2.0,
            t_sigma: 0.0,
            overhead_o: 1e-6,
            beta: 0.9,
        });
        assert_eq!(trace.streams()[&(3, 0)].elems_recv, 7);
        assert_eq!(trace.streams()[&(4, 0)].elems_recv, 8);
    }
}

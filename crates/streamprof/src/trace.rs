//! The finished trace: queries, stall breakdowns, and text exporters.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use desim::SimTime;

use crate::sink::{Clock, Span, StreamMetrics};

/// A completed profiling recording (see [`crate::ProfSink::take`]).
#[derive(Clone, Debug)]
pub struct Trace {
    clock: Clock,
    spans: Vec<Span>,
    streams: BTreeMap<(usize, u16), StreamMetrics>,
}

/// Where one rank's time went, in seconds — the paper's stall taxonomy
/// for a decoupled program: productive compute, sender-side stream
/// overhead, starvation (wait-for-data), back-pressure (wait-for-credit),
/// and collectives. `other` collects everything else (application spans,
/// plain `recv`, `wait-mail`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StallBreakdown {
    pub compute: f64,
    pub send: f64,
    pub wait_data: f64,
    pub wait_credit: f64,
    pub collective: f64,
    pub other: f64,
}

impl StallBreakdown {
    /// Total recorded span time.
    pub fn total(&self) -> f64 {
        self.compute + self.send + self.wait_data + self.wait_credit + self.collective + self.other
    }
}

impl Trace {
    pub(crate) fn new(
        clock: Clock,
        spans: Vec<Span>,
        streams: BTreeMap<(usize, u16), StreamMetrics>,
    ) -> Trace {
        Trace { clock, spans, streams }
    }

    pub fn clock(&self) -> Clock {
        self.clock
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn streams(&self) -> &BTreeMap<(usize, u16), StreamMetrics> {
        &self.streams
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.streams.is_empty()
    }

    /// Earliest span start (the trace's time origin).
    pub fn start(&self) -> SimTime {
        self.spans.iter().map(|s| s.start).min().unwrap_or(SimTime::ZERO)
    }

    /// Latest span end.
    pub fn horizon(&self) -> SimTime {
        self.spans.iter().map(|s| s.end).max().unwrap_or(SimTime::ZERO)
    }

    /// End-to-end recorded time (horizon minus origin), in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.horizon().since(self.start()).as_secs_f64()
    }

    /// Total seconds each `(pid, cat)` pair accounts for.
    pub fn totals_by_cat(&self) -> BTreeMap<(usize, &'static str), f64> {
        let mut map: BTreeMap<(usize, &'static str), f64> = BTreeMap::new();
        for s in &self.spans {
            *map.entry((s.pid, s.cat)).or_default() += s.secs();
        }
        map
    }

    /// Stall breakdown of one rank.
    pub fn stalls(&self, pid: usize) -> StallBreakdown {
        let mut b = StallBreakdown::default();
        for s in self.spans.iter().filter(|s| s.pid == pid) {
            let secs = s.secs();
            match s.cat {
                "compute" | "comp" => b.compute += secs,
                "send" => b.send += secs,
                "wait-data" => b.wait_data += secs,
                "wait-credit" => b.wait_credit += secs,
                "coll" => b.collective += secs,
                _ => b.other += secs,
            }
        }
        b
    }

    /// Stall breakdown of every rank that recorded anything, in rank
    /// order.
    pub fn breakdown(&self) -> Vec<(usize, StallBreakdown)> {
        let mut pids: Vec<usize> = self.spans.iter().map(|s| s.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        pids.into_iter().map(|p| (p, self.stalls(p))).collect()
    }

    /// Adapt a `desim` trace (the simulator's built-in recorder) so one
    /// set of exporters serves both instruments. Span order is preserved,
    /// which keeps [`Trace::to_csv`] and [`Trace::to_gantt`] byte-identical
    /// with what `desim` itself would have rendered.
    pub fn from_desim(trace: &desim::Trace, clock: Clock) -> Trace {
        let spans = trace
            .spans()
            .iter()
            .map(|s| Span { pid: s.pid, cat: s.tag, start: s.start, end: s.end })
            .collect();
        Trace { clock, spans, streams: BTreeMap::new() }
    }

    /// Dump as CSV (`pid,tag,start_s,end_s` — the `desim` schema, so
    /// downstream tooling needs no changes).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("pid,tag,start_s,end_s\n");
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{},{},{:.9},{:.9}",
                s.pid,
                s.cat,
                s.start.as_secs_f64(),
                s.end.as_secs_f64()
            );
        }
        out
    }

    /// Render an ASCII Gantt chart, one row per pid, `width` columns
    /// across the full time horizon. Gaps are `.`; glyphs come from
    /// `glyph_of`. Same algorithm as `desim::Trace::to_gantt_with`, so an
    /// adapted trace renders byte-identically.
    pub fn to_gantt_with(&self, width: usize, glyph_of: impl Fn(&str) -> char) -> String {
        let horizon = self.horizon().as_nanos().max(1);
        let npids = self.spans.iter().map(|s| s.pid + 1).max().unwrap_or(0);
        let mut out = String::new();
        for pid in 0..npids {
            let mut row = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.pid == pid) {
                let a = (s.start.as_nanos() as u128 * width as u128 / horizon as u128) as usize;
                let b = (s.end.as_nanos() as u128 * width as u128 / horizon as u128) as usize;
                let glyph = glyph_of(s.cat);
                for cell in row.iter_mut().take(b.min(width - 1) + 1).skip(a.min(width - 1)) {
                    *cell = glyph;
                }
            }
            let _ = writeln!(out, "P{:<3} |{}|", pid, row.iter().collect::<String>());
        }
        out
    }

    /// [`Trace::to_gantt_with`] with the default glyph scheme: `desim`'s
    /// tags keep their glyphs (`comp` → `C`, `comm` → `M`, `io` → `I`),
    /// the profiler's own categories get distinct letters, anything else
    /// its capitalised first character.
    pub fn to_gantt(&self, width: usize) -> String {
        self.to_gantt_with(width, |cat| match cat {
            "comp" | "compute" => 'C',
            "comm" => 'M',
            "io" => 'I',
            "send" => 'S',
            "wait-data" => 'w',
            "wait-credit" => 'k',
            "coll" => 'L',
            other => other.chars().next().unwrap_or('?').to_ascii_uppercase(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::ProfSink;

    fn sample_trace() -> Trace {
        let sink = ProfSink::new(Clock::Virtual);
        sink.record_span(0, "compute", SimTime(0), SimTime(800));
        sink.record_span(0, "send", SimTime(800), SimTime(1000));
        sink.record_span(1, "wait-data", SimTime(0), SimTime(600));
        sink.record_span(1, "compute", SimTime(600), SimTime(900));
        sink.record_span(1, "coll", SimTime(900), SimTime(1000));
        sink.take()
    }

    #[test]
    fn stall_breakdown_buckets_categories() {
        let t = sample_trace();
        let b0 = t.stalls(0);
        assert!((b0.compute - 800e-9).abs() < 1e-15);
        assert!((b0.send - 200e-9).abs() < 1e-15);
        assert_eq!(b0.wait_data, 0.0);
        let b1 = t.stalls(1);
        assert!((b1.wait_data - 600e-9).abs() < 1e-15);
        assert!((b1.collective - 100e-9).abs() < 1e-15);
        assert!((b1.total() - 1000e-9).abs() < 1e-15);
        assert_eq!(t.breakdown().len(), 2);
        assert!((t.makespan_secs() - 1000e-9).abs() < 1e-15);
    }

    #[test]
    fn csv_matches_the_desim_schema() {
        let csv = sample_trace().to_csv();
        assert!(csv.starts_with("pid,tag,start_s,end_s\n"));
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.contains("0,compute,0.000000000,0.000000800"));
    }

    #[test]
    fn gantt_and_csv_are_byte_identical_with_desim_on_adapted_traces() {
        // Record the same spans in both instruments; every exporter the
        // two share must agree to the byte (fig2 regenerates through the
        // adapter).
        let dsink = desim::TraceSink::new(true);
        let psink = ProfSink::new(Clock::Virtual);
        let spans = [
            (0usize, "comp", 0u64, 700u64),
            (0, "comm", 700, 1000),
            (1, "comp", 100, 400),
            (1, "io", 400, 450),
        ];
        for &(pid, tag, a, b) in &spans {
            dsink.record(desim::Span { pid, tag, start: SimTime(a), end: SimTime(b) });
            psink.record_span(pid, tag, SimTime(a), SimTime(b));
        }
        let dtrace = dsink.take();
        let adapted = Trace::from_desim(&dtrace, Clock::Virtual);
        let own = psink.take();
        for t in [&adapted, &own] {
            assert_eq!(t.to_gantt(40), dtrace.to_gantt(40));
            assert_eq!(t.to_csv(), dtrace.to_csv());
        }
    }
}

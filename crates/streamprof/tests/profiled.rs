//! The `Profiled` wrapper over real backends: the same stream program
//! profiled inside the simulator (virtual clock, deterministic) and on
//! native threads (wall clock), landing in the same trace schema.

use mpisim::{MachineConfig, NoiseModel, World};
use mpistream::{prof_scoped, run_decoupled, ChannelConfig, GroupSpec, Transport};
use native::NativeWorld;
use streamprof::{validate_chrome, Clock, ProfSink, Profiled, Trace};

const RANKS: usize = 8;
const STEPS: usize = 20;

/// The instrumented program, written once against `Transport`.
fn program<TP: Transport>(rank: &mut TP) {
    let comm = rank.world_group();
    run_decoupled::<u64, _, _, _>(
        rank,
        &comm,
        GroupSpec { every: 4 },
        ChannelConfig { credits: Some(8), aggregation: 4, ..ChannelConfig::default() },
        |rank, p| {
            let me = rank.world_rank() as u64;
            for step in 0..STEPS as u64 {
                rank.compute(2e-5);
                p.stream.isend(rank, me * 1000 + step);
            }
        },
        |rank, c| {
            let mut acc = 0u64;
            c.stream.operate(rank, |rank, v| {
                prof_scoped(rank, "fold", |_| acc = acc.wrapping_add(v));
            });
        },
    );
}

fn profile_sim() -> Trace {
    let sink = ProfSink::new(Clock::Virtual);
    let s2 = sink.clone();
    let machine = MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() };
    World::new(machine).with_seed(7).run_expect(RANKS, move |rank| {
        let mut rank = Profiled::new(rank, s2.clone());
        program(&mut rank);
    });
    sink.take()
}

fn profile_native() -> Trace {
    let sink = ProfSink::new(Clock::Wall);
    let s2 = sink.clone();
    NativeWorld::new(RANKS).with_compute_scale(0.05).run(|rank| {
        let mut rank = Profiled::new(rank, s2.clone());
        program(&mut rank);
    });
    sink.take()
}

/// Shape checks that hold on *any* backend.
fn assert_trace_shape(trace: &Trace, clock: Clock) {
    assert_eq!(trace.clock(), clock);
    // 6 producers sent, 2 consumers received, on one channel.
    let producers: Vec<usize> =
        trace.streams().iter().filter(|(_, m)| m.elems_sent > 0).map(|(&(p, _), _)| p).collect();
    let consumers: Vec<usize> =
        trace.streams().iter().filter(|(_, m)| m.elems_recv > 0).map(|(&(p, _), _)| p).collect();
    assert_eq!(producers, vec![0, 1, 2, 4, 5, 6]);
    assert_eq!(consumers, vec![3, 7]);
    let sent: u64 = trace.streams().values().map(|m| m.elems_sent).sum();
    let recvd: u64 = trace.streams().values().map(|m| m.elems_recv).sum();
    assert_eq!(sent, 6 * STEPS as u64);
    assert_eq!(recvd, sent);
    // Credited channel: every producer sampled its window, and occupancy
    // is a valid fraction.
    for (&(p, _), m) in trace.streams().iter().filter(|(_, m)| m.elems_sent > 0) {
        assert!(m.credit_samples > 0, "rank {p} never sampled its credit window");
        assert_eq!(m.credit_window, 8);
        let occ = m.credit_occupancy();
        assert!((0.0..=1.0).contains(&occ), "occupancy {occ}");
    }
    // Producers computed and sent; consumers waited for data and folded.
    for &p in &producers {
        let b = trace.stalls(p);
        assert!(b.compute > 0.0, "rank {p}: {b:?}");
        assert!(b.send > 0.0, "rank {p}: {b:?}");
        assert!(b.collective > 0.0, "rank {p} took part in channel setup: {b:?}");
    }
    for &c in &consumers {
        let b = trace.stalls(c);
        assert!(b.wait_data > 0.0, "rank {c}: {b:?}");
        // The app-level span from `prof_scoped` lands on the timeline
        // (zero-duration in the simulator — the fold costs no virtual
        // time — so count spans, not seconds).
        assert!(
            trace.spans().iter().any(|s| s.pid == c && s.cat == "fold"),
            "rank {c} recorded no 'fold' spans"
        );
    }
    // The Chrome export of this trace is structurally valid.
    let stats = validate_chrome(&trace.to_chrome_json()).unwrap();
    assert_eq!(stats.metadata, RANKS);
    assert!(stats.spans > 0);
    assert_eq!(stats.streams, trace.streams().len());
}

#[test]
fn sim_backend_records_the_expected_shape_deterministically() {
    let t1 = profile_sim();
    assert_trace_shape(&t1, Clock::Virtual);
    // Virtual clock: a rerun reproduces the trace byte-for-byte.
    let t2 = profile_sim();
    assert_eq!(t1.to_chrome_json(), t2.to_chrome_json());
    assert_eq!(t1.to_csv(), t2.to_csv());
}

#[test]
fn native_backend_records_the_same_shape_on_the_wall_clock() {
    let trace = profile_native();
    assert_trace_shape(&trace, Clock::Wall);
}

#[test]
fn wrapper_is_transparent_to_program_results() {
    // The profiled and unprofiled sim runs must produce identical virtual
    // makespans: profiling only *reads* the clock.
    let machine = MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() };
    let plain = World::new(machine.clone())
        .with_seed(7)
        .run_expect(RANKS, |rank| program(rank))
        .elapsed_secs();
    let sink = ProfSink::new(Clock::Virtual);
    let s2 = sink.clone();
    let profiled = World::new(machine)
        .with_seed(7)
        .run_expect(RANKS, move |rank| {
            let mut rank = Profiled::new(rank, s2.clone());
            program(&mut rank);
        })
        .elapsed_secs();
    assert_eq!(plain, profiled, "profiling must not perturb the simulation");
}

//! Synthetic web-log corpus — stand-in for the paper's 2.9 TB Wikipedia
//! web logs (PUMA datasets).
//!
//! What the MapReduce experiment needs from the data is (a) Zipfian word
//! frequencies (irregular per-process intermediate output), (b) a file-size
//! distribution between 256 MB and 1 GB (irregular input work), and (c)
//! deterministic regeneration. The corpus separates **nominal** bytes (the
//! sizes that drive the I/O and compute models, at paper scale) from
//! **actual** tokens (the real words the histogram is computed over, kept
//! small enough to run thousands of simulated ranks in one address space).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::samplers::Zipf;

/// One input file: a nominal on-disk size and a deterministic token
/// stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FileSpec {
    pub id: u64,
    /// Nominal size driving the filesystem model.
    pub bytes: u64,
    /// Number of *actual* tokens the map operation will really hash.
    pub tokens: usize,
}

/// A seeded corpus description.
#[derive(Clone, Debug)]
pub struct Corpus {
    seed: u64,
    vocab: usize,
    zipf: Zipf,
    files: Vec<FileSpec>,
}

/// Parameters for corpus construction.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    pub seed: u64,
    /// Vocabulary size (distinct words).
    pub vocab: usize,
    /// Zipf exponent (~1.0 for natural language).
    pub exponent: f64,
    /// Number of files.
    pub n_files: usize,
    /// Nominal file sizes are uniform in this range (paper: 256 MB–1 GB).
    pub min_file_bytes: u64,
    pub max_file_bytes: u64,
    /// Actual tokens per nominal gigabyte (scales real work down).
    pub tokens_per_gb: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0x1234_5678,
            vocab: 20_000,
            exponent: 1.0,
            n_files: 64,
            min_file_bytes: 256 << 20,
            max_file_bytes: 1 << 30,
            tokens_per_gb: 20_000,
        }
    }
}

impl Corpus {
    pub fn new(cfg: CorpusConfig) -> Corpus {
        assert!(cfg.n_files > 0 && cfg.vocab > 0);
        assert!(cfg.min_file_bytes <= cfg.max_file_bytes);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let files = (0..cfg.n_files as u64)
            .map(|id| {
                let bytes = rng.gen_range(cfg.min_file_bytes..=cfg.max_file_bytes);
                let tokens = ((bytes as f64 / (1u64 << 30) as f64) * cfg.tokens_per_gb as f64)
                    .ceil()
                    .max(1.0) as usize;
                FileSpec { id, bytes, tokens }
            })
            .collect();
        Corpus { seed: cfg.seed, vocab: cfg.vocab, zipf: Zipf::new(cfg.vocab, cfg.exponent), files }
    }

    /// All files of the corpus.
    pub fn files(&self) -> &[FileSpec] {
        &self.files
    }

    /// Total nominal bytes over all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.bytes).sum()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The files assigned to `rank` of `nranks` (blocked round-robin, like
    /// a typical input-split assignment).
    pub fn files_for(&self, rank: usize, nranks: usize) -> Vec<FileSpec> {
        self.files.iter().copied().filter(|f| (f.id as usize) % nranks == rank).collect()
    }

    /// Deterministically regenerate the token stream of `file` — word ids
    /// in `0..vocab`. Independent of which rank calls it.
    pub fn tokens_of(&self, file: &FileSpec) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ file.id.wrapping_mul(0x9E37_79B9));
        (0..file.tokens).map(|_| self.zipf.sample(&mut rng) as u32).collect()
    }

    /// Serial oracle: the exact global histogram over every file.
    pub fn serial_histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.vocab];
        for f in &self.files {
            for t in self.tokens_of(f) {
                hist[t as usize] += 1;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::new(CorpusConfig {
            n_files: 10,
            vocab: 100,
            tokens_per_gb: 1000,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn file_sizes_stay_in_band() {
        let c = small();
        for f in c.files() {
            assert!(f.bytes >= 256 << 20 && f.bytes <= 1 << 30);
            assert!(f.tokens >= 1);
        }
        assert!(c.total_bytes() >= 10 * (256 << 20));
    }

    #[test]
    fn token_streams_are_deterministic() {
        let a = small();
        let b = small();
        for (fa, fb) in a.files().iter().zip(b.files()) {
            assert_eq!(fa, fb);
            assert_eq!(a.tokens_of(fa), b.tokens_of(fb));
        }
    }

    #[test]
    fn different_files_have_different_streams() {
        let c = small();
        let t0 = c.tokens_of(&c.files()[0]);
        let t1 = c.tokens_of(&c.files()[1]);
        assert_ne!(t0, t1);
    }

    #[test]
    fn file_assignment_partitions_everything() {
        let c = small();
        let nranks = 3;
        let mut seen = Vec::new();
        for r in 0..nranks {
            for f in c.files_for(r, nranks) {
                seen.push(f.id);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_histogram_counts_every_token() {
        let c = small();
        let hist = c.serial_histogram();
        let total: u64 = hist.iter().sum();
        let tokens: usize = c.files().iter().map(|f| f.tokens).sum();
        assert_eq!(total, tokens as u64);
        // Zipf: word 0 strictly most frequent over a reasonable sample.
        let max_idx = (0..hist.len()).max_by_key(|&i| hist[i]).unwrap();
        assert_eq!(max_idx, 0, "histogram head: {:?}", &hist[..5]);
    }
}

//! Workload-imbalance profiles and the expected synchronization penalty.
//!
//! The paper's performance model (Eq. 1) charges every staged execution an
//! imbalance term `Tσ` — the expected time the fastest processes idle
//! waiting for the slowest at a synchronization point. This module
//! provides per-rank workload multipliers and an estimator of `Tσ`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::samplers::lognormal;

/// How per-rank work varies around the mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Imbalance {
    /// Perfectly regular work.
    None,
    /// Multiplicative log-normal spread with the given coefficient of
    /// variation (mean 1).
    LogNormal { cv: f64 },
    /// A fixed fraction of ranks carries `factor`× the work (hotspots,
    /// e.g. the mid-plane ranks of a particle code).
    Hotspot { fraction: f64, factor: f64 },
}

impl Imbalance {
    /// Deterministic multiplier for `rank` of `nranks` under `seed`.
    pub fn factor(&self, seed: u64, rank: usize, nranks: usize) -> f64 {
        match *self {
            Imbalance::None => 1.0,
            Imbalance::LogNormal { cv } => {
                let mut rng = StdRng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9E37_79B9));
                lognormal(1.0, cv, &mut rng)
            }
            Imbalance::Hotspot { fraction, factor } => {
                let hot = ((nranks as f64) * fraction).ceil() as usize;
                // Spread hot ranks evenly.
                let stride = (nranks / hot.max(1)).max(1);
                if rank.is_multiple_of(stride) && rank / stride < hot {
                    factor
                } else {
                    1.0
                }
            }
        }
    }

    /// Monte-Carlo estimate of `Tσ` for `nranks` ranks with unit mean
    /// work: `E[max_i w_i] − 1`.
    pub fn t_sigma(&self, seed: u64, nranks: usize) -> f64 {
        let max = (0..nranks).map(|r| self.factor(seed, r, nranks)).fold(0.0f64, f64::max);
        (max - 1.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        assert_eq!(Imbalance::None.factor(1, 5, 64), 1.0);
        assert_eq!(Imbalance::None.t_sigma(1, 64), 0.0);
    }

    #[test]
    fn lognormal_factors_are_deterministic_and_spread() {
        let im = Imbalance::LogNormal { cv: 0.3 };
        let a = im.factor(7, 3, 64);
        let b = im.factor(7, 3, 64);
        let c = im.factor(7, 4, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Mean over many ranks ~ 1.
        let mean: f64 = (0..10_000).map(|r| im.factor(7, r, 10_000)).sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.02, "{mean}");
    }

    #[test]
    fn t_sigma_grows_with_scale() {
        let im = Imbalance::LogNormal { cv: 0.2 };
        let small = im.t_sigma(3, 16);
        let large = im.t_sigma(3, 4096);
        assert!(large > small, "expected max of more draws to be larger: {small} vs {large}");
    }

    #[test]
    fn hotspot_marks_expected_count() {
        let im = Imbalance::Hotspot { fraction: 0.25, factor: 4.0 };
        let hot = (0..64).filter(|&r| im.factor(0, r, 64) > 1.0).count();
        assert_eq!(hot, 16);
        assert_eq!(im.t_sigma(0, 64), 3.0);
    }
}

//! # workloads — seeded synthetic workload generators
//!
//! Stand-ins for the proprietary / at-scale inputs of the paper's
//! evaluation (see DESIGN.md §2 for the substitution arguments):
//!
//! - [`corpus`]: a Zipf word corpus replacing the 2.9 TB Wikipedia web
//!   logs of the MapReduce experiment (Fig. 5);
//! - [`particles`]: a Harris-current-sheet particle setup replacing the
//!   GEM magnetic-reconnection challenge of the iPIC3D experiments
//!   (Fig. 2, 7, 8);
//! - [`imbalance`]: per-rank workload spread profiles and the `Tσ`
//!   estimator of the performance model;
//! - [`samplers`]: the underlying Zipf / log-normal / exponential /
//!   Gaussian samplers (implemented here to avoid extra dependencies).
//!
//! Everything is deterministic given its seed.

pub mod corpus;
pub mod imbalance;
pub mod particles;
pub mod samplers;

pub use corpus::{Corpus, CorpusConfig, FileSpec};
pub use imbalance::Imbalance;
pub use particles::{advance, Particle, ParticleConfig};
pub use samplers::{exponential, gaussian, lognormal, pareto, Ar1, Zipf};

//! GEM-like particle workload — stand-in for the paper's GEM magnetic
//! reconnection challenge setup (Birn et al. 2001) used in the iPIC3D
//! experiments.
//!
//! What Figures 7 and 8 need from the physics is:
//!
//! - a **skewed spatial distribution**: particles concentrate in a Harris
//!   current sheet around the domain mid-plane, so ranks owning mid-plane
//!   subdomains carry far more particles than edge ranks;
//! - **dynamic migration**: particles drift and jitter every step, so the
//!   set and number of boundary crossings changes unpredictably.
//!
//! The generator is deterministic per `(seed, rank)` and separates the
//! *nominal* particle count (used by the timing model at paper scale) from
//! the *actual* in-memory particles (kept small for big worlds).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::samplers::gaussian;

/// One computational particle in the unit cube.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Particle {
    pub pos: [f64; 3],
    pub vel: [f64; 3],
}

mpistream::wire_struct!(Particle { pos, vel });

/// Particle workload parameters.
#[derive(Clone, Debug)]
pub struct ParticleConfig {
    pub seed: u64,
    /// Harris sheet half-thickness (fraction of the domain); smaller =
    /// more skew.
    pub sheet_thickness: f64,
    /// Thermal velocity (fraction of domain per unit time).
    pub v_thermal: f64,
    /// Drift velocity along x for sheet particles.
    pub v_drift: f64,
}

impl Default for ParticleConfig {
    fn default() -> Self {
        ParticleConfig { seed: 0xBEEF, sheet_thickness: 0.1, v_thermal: 0.02, v_drift: 0.05 }
    }
}

impl ParticleConfig {
    /// Harris-sheet density profile over y ∈ [0, 1]:
    /// `sech²((y − ½)/λ)`, normalised to ∫ = 1 by [`Self::density_cdf`].
    pub fn density(&self, y: f64) -> f64 {
        let t = (y - 0.5) / self.sheet_thickness;
        let c = t.cosh();
        1.0 / (c * c)
    }

    /// CDF of the sheet profile: `∫₀ʸ sech²((u-½)/λ) du`, normalised.
    pub fn density_cdf(&self, y: f64) -> f64 {
        let l = self.sheet_thickness;
        let f = |v: f64| ((v - 0.5) / l).tanh();
        (f(y) - f(0.0)) / (f(1.0) - f(0.0))
    }

    /// Inverse CDF (for sampling y positions).
    pub fn density_quantile(&self, u: f64) -> f64 {
        let l = self.sheet_thickness;
        let f0 = ((0.0f64 - 0.5) / l).tanh();
        let f1 = ((1.0f64 - 0.5) / l).tanh();
        let t = f0 + u * (f1 - f0);
        0.5 + l * t.atanh()
    }

    /// Expected fraction of all particles falling in `y ∈ [y0, y1)`.
    pub fn mass_in(&self, y0: f64, y1: f64) -> f64 {
        self.density_cdf(y1) - self.density_cdf(y0)
    }

    /// Number of particles owned by the subdomain `y ∈ [y0, y1)` of a run
    /// with `total` particles (deterministic rounding; the `index` breaks
    /// ties so global conservation holds when callers sum over a uniform
    /// partition).
    pub fn count_in(&self, total: u64, y0: f64, y1: f64) -> u64 {
        (total as f64 * self.mass_in(y0, y1)).round() as u64
    }

    /// Generate the actual particles of the subdomain
    /// `[x0,x1)×[y0,y1)×[z0,z1)` (unit cube coordinates), `n` of them,
    /// deterministically for `(seed, rank)`.
    pub fn generate(&self, rank: usize, n: usize, lo: [f64; 3], hi: [f64; 3]) -> Vec<Particle> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (rank as u64).wrapping_mul(0x2545_F491));
        let (u0, u1) = (self.density_cdf(lo[1]), self.density_cdf(hi[1]));
        (0..n)
            .map(|_| {
                let x = rng.gen_range(lo[0]..hi[0]);
                let z = rng.gen_range(lo[2]..hi[2]);
                // Sample y from the sheet profile restricted to [y0, y1).
                let u = rng.gen_range(u0..u1.max(u0 + f64::EPSILON));
                let y = self.density_quantile(u).clamp(lo[1], hi[1]);
                // Drift is strongest inside the sheet.
                let w = self.density(y);
                let vel = [
                    self.v_drift * w + self.v_thermal * gaussian(&mut rng),
                    self.v_thermal * gaussian(&mut rng),
                    self.v_thermal * gaussian(&mut rng),
                ];
                Particle { pos: [x, y, z], vel }
            })
            .collect()
    }
}

/// Advance a particle by `dt` with periodic wrap in the unit cube and a
/// velocity jitter re-draw (models scattering so migration stays
/// unpredictable). Returns the new particle.
pub fn advance(p: &Particle, dt: f64, cfg: &ParticleConfig, rng: &mut StdRng) -> Particle {
    let mut pos = p.pos;
    let mut vel = p.vel;
    for d in 0..3 {
        pos[d] = (pos[d] + vel[d] * dt).rem_euclid(1.0);
        // Ornstein-Uhlenbeck-ish jitter keeping the velocity scale stable.
        vel[d] = 0.9 * vel[d] + 0.1 * cfg.v_thermal * gaussian(rng);
    }
    // Re-apply sheet drift at the new location.
    vel[0] += 0.1 * cfg.v_drift * cfg.density(pos[1]);
    Particle { pos, vel }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_normalised() {
        let cfg = ParticleConfig::default();
        assert!((cfg.density_cdf(0.0)).abs() < 1e-12);
        assert!((cfg.density_cdf(1.0) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 1..=100 {
            let y = i as f64 / 100.0;
            let c = cfg.density_cdf(y);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let cfg = ParticleConfig::default();
        for i in 1..20 {
            let u = i as f64 / 20.0;
            let y = cfg.density_quantile(u);
            assert!((cfg.density_cdf(y) - u).abs() < 1e-9, "u={u}");
        }
    }

    #[test]
    fn mid_plane_subdomains_get_more_particles() {
        let cfg = ParticleConfig::default();
        let centre = cfg.count_in(1_000_000, 0.45, 0.55);
        let edge = cfg.count_in(1_000_000, 0.0, 0.1);
        assert!(centre > edge * 5, "sheet skew missing: centre {centre} vs edge {edge}");
    }

    #[test]
    fn generated_particles_stay_in_their_subdomain() {
        let cfg = ParticleConfig::default();
        let lo = [0.25, 0.5, 0.0];
        let hi = [0.5, 0.75, 0.25];
        for p in cfg.generate(3, 500, lo, hi) {
            for d in 0..3 {
                assert!(p.pos[d] >= lo[d] && p.pos[d] <= hi[d], "{:?}", p.pos);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_rank() {
        let cfg = ParticleConfig::default();
        let a = cfg.generate(7, 100, [0.0; 3], [1.0; 3]);
        let b = cfg.generate(7, 100, [0.0; 3], [1.0; 3]);
        let c = cfg.generate(8, 100, [0.0; 3], [1.0; 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn advance_wraps_periodically_and_moves() {
        let cfg = ParticleConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let p = Particle { pos: [0.99, 0.5, 0.5], vel: [0.5, 0.0, 0.0] };
        let q = advance(&p, 0.1, &cfg, &mut rng);
        assert!(q.pos[0] < 0.1, "should wrap, got {}", q.pos[0]);
        assert!((0.0..1.0).contains(&q.pos[1]));
    }

    #[test]
    fn counts_over_uniform_partition_conserve_total_approximately() {
        let cfg = ParticleConfig::default();
        let total = 10_000_000u64;
        let slabs = 16;
        let sum: u64 = (0..slabs)
            .map(|i| cfg.count_in(total, i as f64 / slabs as f64, (i + 1) as f64 / slabs as f64))
            .sum();
        let err = (sum as i64 - total as i64).unsigned_abs();
        assert!(err <= slabs, "rounding error {err} too large");
    }
}

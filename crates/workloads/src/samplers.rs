//! Distribution samplers.
//!
//! Implemented here (rather than pulling `rand_distr`) to keep the offline
//! dependency set minimal; each sampler is tested for first/second moments.

use rand::rngs::StdRng;
use rand::Rng;

/// Standard normal via Box–Muller.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Exponential with the given mean.
pub fn exponential(mean: f64, rng: &mut StdRng) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() * mean
}

/// Log-normal parameterised by its *linear-space* mean and coefficient of
/// variation — the natural way to express "workload with mean W and 30%
/// spread".
pub fn lognormal(mean: f64, cv: f64, rng: &mut StdRng) -> f64 {
    debug_assert!(mean > 0.0 && cv >= 0.0);
    if cv == 0.0 {
        return mean;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu + sigma2.sqrt() * gaussian(rng)).exp()
}

/// Zipf sampler over ranks `0..n` with exponent `s`, using a precomputed
/// cumulative table and binary search. Natural-language word frequencies
/// are approximately Zipf(s≈1), which is what makes the paper's MapReduce
/// workload irregular.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a positive support size");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `k` (0-based).
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw a 0-based rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // partition_point: first index with cdf > u.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xABCD)
    }

    #[test]
    fn exponential_mean_is_right() {
        let mut r = rng();
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| exponential(3.0, &mut r)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.06, "{mean}");
    }

    #[test]
    fn lognormal_mean_and_cv_are_right() {
        let mut r = rng();
        let n = 60_000;
        let xs: Vec<f64> = (0..n).map(|_| lognormal(10.0, 0.5, &mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 10.0).abs() < 0.15, "mean {mean}");
        assert!((cv - 0.5).abs() < 0.03, "cv {cv}");
    }

    #[test]
    fn lognormal_zero_cv_is_deterministic() {
        let mut r = rng();
        assert_eq!(lognormal(7.0, 0.0, &mut r), 7.0);
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(1000, 1.0);
        let total: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..1000 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_samples_match_pmf_for_top_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let n = 100_000;
        let mut counts = vec![0usize; 100];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (k, &count) in counts.iter().enumerate().take(5) {
            let emp = count as f64 / n as f64;
            let theo = z.pmf(k);
            assert!((emp - theo).abs() / theo < 0.06, "rank {k}: emp {emp} theo {theo}");
        }
    }

    #[test]
    fn zipf_single_element_support() {
        let z = Zipf::new(1, 1.2);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(z.sample(&mut r), 0);
        }
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }
}

/// Pareto (power-law) sampler with scale `x_min` and shape `alpha` —
/// heavy-tailed service times, file sizes, flow sizes.
pub fn pareto(x_min: f64, alpha: f64, rng: &mut StdRng) -> f64 {
    debug_assert!(x_min > 0.0 && alpha > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    x_min / u.powf(1.0 / alpha)
}

/// A mean-one AR(1) multiplicative jitter process: successive draws are
/// correlated with coefficient `rho`, marginal coefficient of variation
/// `cv`. Models slowly-wandering interference (a neighbour job ramping
/// up, thermal throttling) as opposed to i.i.d. per-step noise.
#[derive(Clone, Debug)]
pub struct Ar1 {
    rho: f64,
    sigma: f64,
    state: f64,
}

impl Ar1 {
    pub fn new(rho: f64, cv: f64) -> Ar1 {
        assert!((0.0..1.0).contains(&rho), "rho in [0,1)");
        assert!(cv >= 0.0);
        // Stationary log-variance for a log-normal marginal with the
        // requested cv.
        let sigma2 = (1.0 + cv * cv).ln();
        Ar1 { rho, sigma: sigma2.sqrt(), state: 0.0 }
    }

    /// Next multiplicative factor (mean ≈ 1).
    pub fn next(&mut self, rng: &mut StdRng) -> f64 {
        let innovation = (1.0 - self.rho * self.rho).sqrt() * self.sigma * gaussian(rng);
        self.state = self.rho * self.state + innovation;
        (self.state - self.sigma * self.sigma / 2.0).exp()
    }
}

#[cfg(test)]
mod ext_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pareto_respects_scale_and_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| pareto(2.0, 2.5, &mut rng)).collect();
        assert!(xs.iter().all(|&x| x >= 2.0));
        // Mean of Pareto(alpha=2.5, xm=2) = alpha*xm/(alpha-1) = 10/3.
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0 / 3.0).abs() < 0.1, "{mean}");
    }

    #[test]
    fn ar1_is_mean_one_and_correlated() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut ar = Ar1::new(0.9, 0.3);
        // Burn in, then sample.
        for _ in 0..100 {
            ar.next(&mut rng);
        }
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| ar.next(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        // Lag-1 autocorrelation of log(x) should be ~rho.
        let logs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let lmean = logs.iter().sum::<f64>() / n as f64;
        let var: f64 = logs.iter().map(|l| (l - lmean) * (l - lmean)).sum::<f64>();
        let cov: f64 = logs.windows(2).map(|w| (w[0] - lmean) * (w[1] - lmean)).sum::<f64>();
        let rho_hat = cov / var;
        assert!((rho_hat - 0.9).abs() < 0.02, "rho {rho_hat}");
    }

    #[test]
    fn ar1_with_zero_cv_is_constant_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ar = Ar1::new(0.5, 0.0);
        for _ in 0..10 {
            assert!((ar.next(&mut rng) - 1.0).abs() < 1e-12);
        }
    }
}

//! Tuning the group fraction α: simulate a sweep, fit the performance
//! model to it, and compare the model's recommended α with the measured
//! optimum — the workflow §II-D and §III suggest for configuring a
//! decoupled application.
//!
//! Run with: `cargo run --release --example alpha_tuning`

use apps::analysis::{run_decoupled_analysis, run_reference, AnalysisConfig};
use perfmodel::{Beta, Complexity, Scenario};

fn main() {
    const P: usize = 64;
    let base = AnalysisConfig { steps: 40, secs_per_unit: 2e-9, ..AnalysisConfig::default() };

    println!("workload-analysis app on {P} ranks; sweeping the decoupled group fraction\n");
    let t_ref = run_reference(P, &base).outcome.elapsed_secs();
    println!("conventional (3 collectives per step): {:.4} s", t_ref);

    let mut best = (0usize, f64::INFINITY);
    let mut sweep = Vec::new();
    for every in [2usize, 4, 8, 16, 32] {
        let cfg = AnalysisConfig { alpha_every: every, ..base.clone() };
        let t = run_decoupled_analysis(P, &cfg).outcome.elapsed_secs();
        println!("decoupled alpha = 1/{every:<2}: {t:.4} s  (speedup {:.2}x)", t_ref / t);
        sweep.push((every, t));
        if t < best.1 {
            best = (every, t);
        }
    }

    // Ask the analytic model the same question.
    let scn = Scenario {
        t_w0: 40.0 * 1500.0 * 2e-9, // steps x mean work x unit cost
        t_w1: t_ref - 40.0 * 1500.0 * 2e-9,
        complexity: Complexity::LogP, // collectives shrink with the group
        t_sigma: 0.0,
        data_d: 40 * (1 << 10),
        overhead_o: 1e-6,
        p: P,
        beta: Beta::new(0.05, (1u64 << 20) as f64),
        op1_optimization: 1.0,
    };
    let (alpha_star, t_star) = scn.optimal_alpha(1024.0);
    println!(
        "\nmeasured optimum: alpha = 1/{} ({:.4} s); model suggests alpha = {:.3} \
         (predicted {:.4} s)",
        best.0, best.1, alpha_star, t_star
    );
}

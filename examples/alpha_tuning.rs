//! Tuning the group fraction α: simulate a sweep, fit the performance
//! model to it, and compare the model's recommended α with the measured
//! optimum — the workflow §II-D and §III suggest for configuring a
//! decoupled application.
//!
//! The second half does the same for the model's *inputs*: instead of
//! assuming β(S) and Tσ, it records `streamprof` traces over a channel
//! granularity sweep and fits them from observations (Eq. 4 solved for
//! β, then the β(S) family grid-searched through the measured points).
//!
//! Run with: `cargo run --release --example alpha_tuning`

use apps::analysis::{
    run_decoupled_analysis, run_profiled_analysis, run_profiled_combined_analysis, run_reference,
    AnalysisConfig,
};
use perfmodel::{Beta, Complexity, Scenario};

fn main() {
    const P: usize = 64;
    let base = AnalysisConfig { steps: 40, secs_per_unit: 2e-9, ..AnalysisConfig::default() };

    println!("workload-analysis app on {P} ranks; sweeping the decoupled group fraction\n");
    let t_ref = run_reference(P, &base).outcome.elapsed_secs();
    println!("conventional (3 collectives per step): {:.4} s", t_ref);

    let mut best = (0usize, f64::INFINITY);
    let mut sweep = Vec::new();
    for every in [2usize, 4, 8, 16, 32] {
        let cfg = AnalysisConfig { alpha_every: every, ..base.clone() };
        let t = run_decoupled_analysis(P, &cfg).outcome.elapsed_secs();
        println!("decoupled alpha = 1/{every:<2}: {t:.4} s  (speedup {:.2}x)", t_ref / t);
        sweep.push((every, t));
        if t < best.1 {
            best = (every, t);
        }
    }

    // Ask the analytic model the same question.
    let assumed_beta = Beta::new(0.05, (1u64 << 20) as f64);
    let scn = Scenario {
        t_w0: 40.0 * 1500.0 * 2e-9, // steps x mean work x unit cost
        t_w1: t_ref - 40.0 * 1500.0 * 2e-9,
        complexity: Complexity::LogP, // collectives shrink with the group
        t_sigma: 0.0,
        data_d: 40 * (1 << 10),
        overhead_o: 1e-6,
        p: P,
        beta: assumed_beta,
        op1_optimization: 1.0,
    };
    let (alpha_star, t_star) = scn.optimal_alpha(1024.0);
    println!(
        "\nmeasured optimum: alpha = 1/{} ({:.4} s); model suggests alpha = {:.3} \
         (predicted {:.4} s)",
        best.0, best.1, alpha_star, t_star
    );

    // --- Fit the model's inputs from traces instead of assuming them ---
    println!("\nfitting beta(S) and T_sigma from streamprof traces (granularity sweep):\n");
    // A compute-heavy configuration so the Eq. 4 terms dominate the fixed
    // runtime costs (group split, final barrier) the model does not see.
    let fit_cfg = AnalysisConfig { steps: 200, secs_per_unit: 1e-6, ..base.clone() };
    let mut points: Vec<(f64, f64)> = Vec::new();
    let mut t_sigma_fit = 0.0f64;
    let mut overhead_fit = 0.0f64;
    println!(
        "  {:>10}  {:>10}  {:>12}  {:>12}",
        "S (bytes)", "beta_eff", "model beta", "Tsigma (s)"
    );
    for shift in [6u32, 8, 10, 12, 14, 16] {
        let s = 1u64 << shift;
        let (_, trace) = run_profiled_analysis(P, &fit_cfg, s);
        let fit = streamprof::fit(&trace).expect("analysis trace has stream counters");
        println!(
            "  {:>10}  {:>10.4}  {:>12.4}  {:>12.3e}",
            s,
            fit.beta_eff,
            assumed_beta.at(s as f64),
            fit.t_sigma
        );
        points.push((s as f64, fit.beta_eff));
        t_sigma_fit = t_sigma_fit.max(fit.t_sigma);
        overhead_fit = overhead_fit.max(fit.overhead_o);
    }
    let (fitted, sse) = streamprof::fit_beta_curve(&points);
    println!(
        "\nfitted   beta(S): beta_min = {:.3}, S0 = {:.3e} B (sse {:.2e})",
        fitted.beta_min, fitted.s0, sse
    );
    println!(
        "assumed  beta(S): beta_min = {:.3}, S0 = {:.3e} B",
        assumed_beta.beta_min, assumed_beta.s0
    );
    println!(
        "fitted   T_sigma = {:.3e} s (assumed {:.3e}), o = {:.3e} s/elem (assumed {:.3e})",
        t_sigma_fit, scn.t_sigma, overhead_fit, scn.overhead_o
    );

    // --- The same fit with a producer-side combiner in front ---
    // Eq. 4 charges the overhead `o` once per element *entering the
    // channel*. A combiner folds k logical updates into one emitted
    // element, so the cost per logical update should fall by about the
    // fold factor — re-fitting the traced runs makes that amortization
    // measurable rather than assumed.
    println!("\nEq. 4 overhead o, with and without producer-side combiners (S = 1 KiB):\n");
    println!(
        "  {:>9}  {:>8}  {:>8}  {:>12}  {:>14}  {:>8}",
        "combine_k", "folded", "emitted", "o (s/elem)", "o (s/update)", "beta_eff"
    );
    let mut o_per_update_flat = f64::NAN;
    for k in [1usize, 4, 8, 16] {
        let (_, trace, stats) = run_profiled_combined_analysis(P, &fit_cfg, 1 << 10, k);
        let fit = streamprof::fit(&trace).expect("combined trace has stream counters");
        let per_update = fit.overhead_o * stats.emitted as f64 / stats.folded as f64;
        if k == 1 {
            o_per_update_flat = per_update;
        }
        println!(
            "  {:>9}  {:>8}  {:>8}  {:>12.3e}  {:>14.3e}  {:>8.4}",
            k, stats.folded, stats.emitted, fit.overhead_o, per_update, fit.beta_eff
        );
    }
    println!(
        "\nper-update overhead without combining: {:.3e} s — the combined rows above \
         amortize it by ~1/k",
        o_per_update_flat
    );
}

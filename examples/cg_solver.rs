//! CG Poisson solver: blocking vs non-blocking vs decoupled halo exchange.
//!
//! A miniature of the paper's Fig. 6 experiment. The solver really
//! converges (we print the relative residual and the error against the
//! manufactured solution `u = sin(πx)sin(πy)sin(πz)`).
//!
//! Run with: `cargo run --release --example cg_solver`

use apps::cg::{run_blocking, run_decoupled, run_nonblocking, CgConfig};

fn main() {
    let nprocs = 64;
    let cfg = CgConfig { n_local: 8, iterations: 60, alpha_every: 16, ..CgConfig::default() };

    println!(
        "CG on {nprocs} ranks, {}^3 actual cells/rank, {} iterations \
         (nominal workload: 120^3 cells/rank)\n",
        cfg.n_local, cfg.iterations
    );

    let b = run_blocking(nprocs, &cfg);
    println!(
        "blocking     : {:.3} s   residual {:.3e}   error vs manufactured {:.3e}",
        b.outcome.elapsed_secs(),
        b.residual,
        b.solution_error
    );

    let n = run_nonblocking(nprocs, &cfg);
    println!(
        "non-blocking : {:.3} s   residual {:.3e}   error vs manufactured {:.3e}",
        n.outcome.elapsed_secs(),
        n.residual,
        n.solution_error
    );

    let d = run_decoupled(nprocs, &cfg);
    println!(
        "decoupled    : {:.3} s   residual {:.3e}   error vs manufactured {:.3e}",
        d.outcome.elapsed_secs(),
        d.residual,
        d.solution_error
    );

    println!(
        "\nspeedup over blocking: non-blocking {:.2}x, decoupled {:.2}x",
        b.outcome.elapsed_secs() / n.outcome.elapsed_secs(),
        b.outcome.elapsed_secs() / d.outcome.elapsed_secs()
    );
}

//! MapReduce word histogram: reference vs decoupled, side by side.
//!
//! A miniature of the paper's Fig. 5 experiment: a Zipf web-log corpus is
//! mapped to `(word, count)` pairs and reduced into a global histogram,
//! once with the conventional allgatherv+reduce pattern and once with the
//! decoupled map-group → reduce-group → master pipeline. Both produce
//! bit-identical histograms; the makespans differ.
//!
//! Run with: `cargo run --release --example mapreduce_wordcount`

use apps::mapreduce::{run_decoupled, run_reference, MapReduceConfig};
use workloads::{Corpus, CorpusConfig};

fn main() {
    let nprocs = 64;
    let cfg = MapReduceConfig {
        corpus: CorpusConfig {
            n_files: 128,
            vocab: 2_000,
            tokens_per_gb: 4_000,
            min_file_bytes: 64 << 20,
            max_file_bytes: 256 << 20,
            ..CorpusConfig::default()
        },
        wire_scale: 10_000.0,
        alpha_every: 16,
        ..MapReduceConfig::default()
    };

    let corpus = Corpus::new(cfg.corpus.clone());
    println!(
        "corpus: {} files, {:.1} GB nominal, vocabulary {}",
        corpus.files().len(),
        corpus.total_bytes() as f64 / (1u64 << 30) as f64,
        corpus.vocab()
    );

    println!("\nrunning reference (map + Iallgatherv + Ireduce) on {nprocs} ranks ...");
    let reference = run_reference(nprocs, &cfg);
    println!("  makespan {:.3} s", reference.outcome.elapsed_secs());

    println!("running decoupled (map group -> reduce group -> master) ...");
    let decoupled = run_decoupled(nprocs, &cfg);
    println!("  makespan {:.3} s", decoupled.outcome.elapsed_secs());

    assert_eq!(
        reference.histogram, decoupled.histogram,
        "both implementations must compute the same histogram"
    );
    let oracle = corpus.serial_histogram();
    assert_eq!(reference.histogram, oracle, "and it must match the serial oracle");

    let top: Vec<(usize, u64)> = {
        let mut h: Vec<(usize, u64)> = reference.histogram.iter().copied().enumerate().collect();
        h.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        h.truncate(5);
        h
    };
    println!("\ntop words (id, count): {top:?}");
    println!(
        "speedup from decoupling at P={nprocs}: {:.2}x",
        reference.outcome.elapsed_secs() / decoupled.outcome.elapsed_secs()
    );
}

//! Mini-iPIC3D particle pipeline: communication and I/O, reference vs
//! decoupled — plus the Fig. 2 style timeline trace.
//!
//! Run with: `cargo run --release --example particle_pipeline`

use apps::pic::{
    run_comm_decoupled, run_comm_decoupled_traced, run_comm_reference, run_comm_reference_traced,
    run_io_decoupled, run_io_reference, IoMode, PicConfig,
};

fn main() {
    let cfg = PicConfig { iterations: 6, alpha_every: 8, ..PicConfig::default() };
    let nprocs = 64;

    println!("== particle communication ({nprocs} ranks, {} steps) ==", cfg.iterations);
    let r = run_comm_reference(nprocs, &cfg);
    println!(
        "reference (6-neighbour forwarding + termination allreduce): {:.3} s, {} msgs",
        r.outcome.elapsed_secs(),
        r.outcome.msgs_sent
    );
    let d = run_comm_decoupled(nprocs, &cfg);
    println!(
        "decoupled (stream -> aggregate by destination -> one pass) : {:.3} s, {} msgs",
        d.outcome.elapsed_secs(),
        d.outcome.msgs_sent
    );

    println!("\n== particle I/O ({nprocs} ranks, dump every step) ==");
    let coll = run_io_reference(nprocs, &cfg, IoMode::Collective);
    println!(
        "MPI_File_write_all flavour   : {:.3} s  ({:.2} GB written)",
        coll.outcome.elapsed_secs(),
        coll.bytes_written as f64 / 1e9
    );
    let shared = run_io_reference(nprocs, &cfg, IoMode::Shared);
    println!(
        "MPI_File_write_shared flavour: {:.3} s  ({:.2} GB written)",
        shared.outcome.elapsed_secs(),
        shared.bytes_written as f64 / 1e9
    );
    let dec = run_io_decoupled(nprocs, &cfg);
    println!(
        "decoupled I/O group          : {:.3} s  ({:.2} GB written)",
        dec.outcome.elapsed_secs(),
        dec.bytes_written as f64 / 1e9
    );

    // The Fig. 2 timelines: 7 ranks, compute (C) vs communication (M).
    println!("\n== execution timelines (Fig. 2; C = compute, M = comm, . = idle) ==");
    let tcfg = PicConfig { iterations: 3, alpha_every: 7, actual_per_rank: 128, ..cfg };
    let tr = run_comm_reference_traced(7, &tcfg);
    println!("reference:\n{}", render(&tr.outcome.sim.trace));
    let td = run_comm_decoupled_traced(7, &tcfg);
    println!("decoupled (rank 6 is the communication group):\n{}", render(&td.outcome.sim.trace));
}

fn render(trace: &desim::Trace) -> String {
    // Re-tag: comp -> C, comm -> M for visual contrast.
    trace.to_gantt(100).replace('\u{0}', "")
}

//! Quickstart — the paper's Listing 1, in Rust.
//!
//! An application alternates `Calculation()` with an analysis of the
//! workload distribution across processes (min / max / median), a common
//! load-balancing step. Conventionally every process would stop and take
//! part in three reductions; decoupled, the computation group streams
//! workload updates to a small analysis group that processes them
//! on-the-fly, first-come-first-served.
//!
//! Run with: `cargo run --release --example quickstart`

use mpisim::{MachineConfig, World};
use mpistream::{run_decoupled, ChannelConfig, GroupSpec};

/// One workload report streamed to the analysis group. `rank` and `step`
/// model the real wire payload; this demo's analysis reads only the work.
#[derive(Clone, Copy, Debug)]
#[allow(dead_code)]
struct WorkloadUpdate {
    rank: usize,
    step: usize,
    work_units: u64,
}

mpistream::wire_struct!(WorkloadUpdate { rank, step, work_units });

fn main() {
    const RANKS: usize = 32;
    const STEPS: usize = 50;

    let world = World::new(MachineConfig::default()).with_seed(42);
    let outcome = world.run_expect(RANKS, |rank| {
        let comm = rank.comm_world();
        let stats = run_decoupled::<WorkloadUpdate, _, _, _>(
            rank,
            &comm,
            GroupSpec::from_alpha(0.0625), // one analysis rank per 16
            ChannelConfig { element_bytes: 1 << 10, ..ChannelConfig::default() },
            // --- computation group ---
            |rank, p| {
                let me = rank.world_rank();
                let mut work = 1_000u64 + (me as u64 * 37) % 500;
                for step in 0..STEPS {
                    // Calculation(): imbalanced work, perturbed each step.
                    rank.compute(work as f64 * 1e-7);
                    work = work.wrapping_mul(6364136223846793005).wrapping_add(step as u64) % 2_000
                        + 500;
                    // if (hasWorkloadChanges) MPIStream_Isend(...)
                    p.stream.isend(rank, WorkloadUpdate { rank: me, step, work_units: work });
                }
            },
            // --- analysis group ---
            |rank, c| {
                let mut samples: Vec<u64> = Vec::new();
                let n = c.stream.operate(rank, |_rank, update| {
                    samples.push(update.work_units);
                });
                samples.sort_unstable();
                if !samples.is_empty() {
                    let min = samples[0];
                    let max = samples[samples.len() - 1];
                    let median = samples[samples.len() / 2];
                    println!(
                        "analysis rank {:>2}: {n:>5} updates  min={min:<5} \
                         median={median:<5} max={max:<5}",
                        rank.world_rank()
                    );
                }
            },
        );
        if rank.world_rank() == 0 {
            println!(
                "rank 0 streamed {} updates in {} messages ({} bytes on the wire)",
                stats.elements, stats.batches, stats.bytes
            );
        }
    });

    println!(
        "\nsimulated makespan: {:.6} s  ({} messages, {} bytes total)",
        outcome.elapsed_secs(),
        outcome.msgs_sent,
        outcome.bytes_sent
    );
}

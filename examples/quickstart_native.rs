//! Quickstart on the native threaded backend — the same decoupled program
//! as `quickstart`, written once against the `Transport` trait and
//! executed either inside the discrete-event simulator or on real OS
//! threads (one per rank) on the host.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart_native -- --backend native
//! cargo run --release --example quickstart_native -- --backend sim
//! cargo run --release --example quickstart_native -- --backend socket
//! cargo run --release --example quickstart_native -- --backend both
//! cargo run --release --example quickstart_native -- --trace out.trace.json
//! ```
//!
//! In `both` mode the per-consumer payload fingerprints from the two
//! backends are compared: the program streams only deterministic values
//! over static routing, so each analysis rank must consume the same
//! multiset of updates no matter which backend delivered them.
//!
//! `--trace <path>` records the run through `streamprof` and writes a
//! Chrome-trace JSON (open in `chrome://tracing` or Perfetto) — on the
//! sim backend the spans carry virtual time, on the native backend wall
//! clock, same file format either way. In `both` mode the backend name
//! is suffixed onto the path (`out.sim.trace.json`, `out.native.trace.json`).
//!
//! `--backend socket` runs the same program across real OS processes
//! (one per rank, Unix-domain sockets between them). Each child records
//! its own wall-clock spans; the launcher merges every rank's spans into
//! one Chrome trace, so the file looks exactly like the native one —
//! except the timelines come from separate address spaces.

use std::collections::BTreeMap;
use std::sync::Arc;

use apps::portable::{fingerprint, quickstart, PortableReport};
use mpisim::{MachineConfig, World};
use mpistream::transport::SimTime;
use mpistream::Transport;
use native::NativeWorld;
use parking_lot::Mutex;
use streamprof::{Clock, ProfSink, Profiled};

const RANKS: usize = 16;
const STEPS: usize = 50;
const EVERY: usize = 8; // one analysis rank per 8

type Reports = BTreeMap<usize, PortableReport>;

fn write_trace(path: &str, sink: ProfSink) {
    let trace = sink.take();
    std::fs::write(path, trace.to_chrome_json()).expect("write trace file");
    println!("wrote {path} ({} spans, {} clock)", trace.spans().len(), trace.clock().label());
}

fn run_sim(trace: Option<&str>) -> Reports {
    let reports: Arc<Mutex<Reports>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = reports.clone();
    let prof = trace.map(|_| ProfSink::new(Clock::Virtual));
    let prof2 = prof.clone();
    let world = World::new(MachineConfig::default()).with_seed(42);
    let outcome = world.run_expect(RANKS, move |rank| {
        let me = rank.world_rank();
        let rep = match &prof2 {
            Some(p) => quickstart(&mut Profiled::new(rank, p.clone()), STEPS, EVERY),
            None => quickstart(rank, STEPS, EVERY),
        };
        sink.lock().insert(me, rep);
    });
    println!("sim:    virtual makespan {:.6} s", outcome.elapsed_secs());
    if let (Some(path), Some(p)) = (trace, prof) {
        write_trace(path, p);
    }
    Arc::try_unwrap(reports).expect("world joined").into_inner()
}

fn run_native(trace: Option<&str>) -> Reports {
    let reports: Arc<Mutex<Reports>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = reports.clone();
    let prof = trace.map(|_| ProfSink::new(Clock::Wall));
    let prof2 = prof.clone();
    // Modelled compute is milliseconds per rank; sleep it at full scale.
    let world = NativeWorld::new(RANKS);
    let outcome = world.run(move |rank| {
        let me = rank.world_rank();
        let rep = match &prof2 {
            Some(p) => quickstart(&mut Profiled::new(rank, p.clone()), STEPS, EVERY),
            None => quickstart(rank, STEPS, EVERY),
        };
        sink.lock().insert(me, rep);
    });
    println!(
        "native: wall-clock {:.6} s on {} threads",
        outcome.elapsed.as_secs_f64(),
        outcome.nprocs
    );
    if let (Some(path), Some(p)) = (trace, prof) {
        write_trace(path, p);
    }
    Arc::try_unwrap(reports).expect("threads joined").into_inner()
}

/// The span categories the portable program can emit. Spans cross the
/// process boundary as owned strings; re-interning against this set
/// recovers the `&'static str` the sink API wants without leaking in
/// the common case.
const KNOWN_CATS: &[&str] =
    &["compute", "send", "coll", "recv", "combine", "wait-mail", "wait-data", "wait-credit"];

fn intern_cat(cat: String) -> &'static str {
    match KNOWN_CATS.iter().find(|k| **k == cat) {
        Some(k) => k,
        None => Box::leak(cat.into_boxed_str()),
    }
}

fn run_socket(trace: Option<&str>) -> Reports {
    let start = std::time::Instant::now();
    // Children re-exec this binary with the same argv, so each rank sees
    // the same `--backend socket --trace ...` flags and knows to record.
    let tracing = trace.is_some();
    let results = socket::SocketWorld::new("quickstart_native_example", RANKS).run(|rank| {
        let me = rank.world_rank();
        if tracing {
            let p = ProfSink::new(Clock::Wall);
            let rep = quickstart(&mut Profiled::new(rank, p.clone()), STEPS, EVERY);
            let spans: Vec<(String, u64, u64)> = p
                .take()
                .spans()
                .iter()
                .map(|s| (s.cat.to_string(), s.start.as_nanos(), s.end.as_nanos()))
                .collect();
            (me, rep.sent, rep.received, spans)
        } else {
            let rep = quickstart(rank, STEPS, EVERY);
            (me, rep.sent, rep.received, Vec::new())
        }
    });
    println!(
        "socket: wall-clock {:.6} s across {} processes",
        start.elapsed().as_secs_f64(),
        RANKS
    );
    if let Some(path) = trace {
        // Merge every rank's wall-clock spans into one sink: same file
        // format as the native trace, timelines from separate processes.
        let merged = ProfSink::new(Clock::Wall);
        for (me, _, _, spans) in &results {
            for (cat, s, e) in spans {
                merged.record_span(*me, intern_cat(cat.clone()), SimTime(*s), SimTime(*e));
            }
        }
        write_trace(path, merged);
    }
    results
        .into_iter()
        .map(|(me, sent, received, _)| (me, PortableReport { sent, received }))
        .collect()
}

/// Per-consumer fingerprints: `rank -> (updates consumed, fingerprint)`.
fn consumer_fingerprints(reports: &Reports) -> BTreeMap<usize, (usize, u64)> {
    reports
        .iter()
        .filter(|(_, rep)| !rep.received.is_empty())
        .map(|(&r, rep)| (r, (rep.received.len(), fingerprint(&rep.received))))
        .collect()
}

fn show(label: &str, reports: &Reports) {
    for (rank, (n, fp)) in consumer_fingerprints(reports) {
        println!("{label} analysis rank {rank:>2}: {n:>5} updates  fingerprint {fp:#018x}");
    }
}

/// `out.trace.json` + `sim` -> `out.sim.trace.json` (suffix before the
/// conventional `.trace.json` double extension, else before `.json`).
fn suffixed(path: &str, backend: &str) -> String {
    for ext in [".trace.json", ".json"] {
        if let Some(stem) = path.strip_suffix(ext) {
            return format!("{stem}.{backend}{ext}");
        }
    }
    format!("{path}.{backend}")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let backend = args
        .iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("both")
        .to_string();
    let trace = args.iter().position(|a| a == "--trace").and_then(|i| args.get(i + 1)).cloned();

    match backend.as_str() {
        "sim" => show("sim:   ", &run_sim(trace.as_deref())),
        "native" => show("native:", &run_native(trace.as_deref())),
        "socket" => show("socket:", &run_socket(trace.as_deref())),
        "both" => {
            let sim_trace = trace.as_deref().map(|p| suffixed(p, "sim"));
            let native_trace = trace.as_deref().map(|p| suffixed(p, "native"));
            let sim = run_sim(sim_trace.as_deref());
            let native = run_native(native_trace.as_deref());
            show("sim:   ", &sim);
            show("native:", &native);
            let same = consumer_fingerprints(&sim) == consumer_fingerprints(&native);
            println!(
                "\nper-consumer payload multisets {}",
                if same { "MATCH across backends" } else { "DIFFER across backends" }
            );
            assert!(same, "backends disagree on consumed payloads");
        }
        other => {
            eprintln!("unknown backend {other:?}: use --backend sim|native|socket|both");
            std::process::exit(2);
        }
    }
}

//! Quickstart on the native threaded backend — the same decoupled program
//! as `quickstart`, written once against the `Transport` trait and
//! executed either inside the discrete-event simulator or on real OS
//! threads (one per rank) on the host.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart_native -- --backend native
//! cargo run --release --example quickstart_native -- --backend sim
//! cargo run --release --example quickstart_native -- --backend both
//! ```
//!
//! In `both` mode the per-consumer payload fingerprints from the two
//! backends are compared: the program streams only deterministic values
//! over static routing, so each analysis rank must consume the same
//! multiset of updates no matter which backend delivered them.

use std::collections::BTreeMap;
use std::sync::Arc;

use apps::portable::{fingerprint, quickstart, PortableReport};
use mpisim::{MachineConfig, World};
use mpistream::Transport;
use native::NativeWorld;
use parking_lot::Mutex;

const RANKS: usize = 16;
const STEPS: usize = 50;
const EVERY: usize = 8; // one analysis rank per 8

type Reports = BTreeMap<usize, PortableReport>;

fn run_sim() -> Reports {
    let reports: Arc<Mutex<Reports>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = reports.clone();
    let world = World::new(MachineConfig::default()).with_seed(42);
    let outcome = world.run_expect(RANKS, move |rank| {
        let rep = quickstart(rank, STEPS, EVERY);
        sink.lock().insert(rank.world_rank(), rep);
    });
    println!("sim:    virtual makespan {:.6} s", outcome.elapsed_secs());
    Arc::try_unwrap(reports).expect("world joined").into_inner()
}

fn run_native() -> Reports {
    let reports: Arc<Mutex<Reports>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = reports.clone();
    // Modelled compute is milliseconds per rank; sleep it at full scale.
    let world = NativeWorld::new(RANKS);
    let outcome = world.run(move |rank| {
        let me = rank.world_rank();
        let rep = quickstart(rank, STEPS, EVERY);
        sink.lock().insert(me, rep);
    });
    println!(
        "native: wall-clock {:.6} s on {} threads",
        outcome.elapsed.as_secs_f64(),
        outcome.nprocs
    );
    Arc::try_unwrap(reports).expect("threads joined").into_inner()
}

/// Per-consumer fingerprints: `rank -> (updates consumed, fingerprint)`.
fn consumer_fingerprints(reports: &Reports) -> BTreeMap<usize, (usize, u64)> {
    reports
        .iter()
        .filter(|(_, rep)| !rep.received.is_empty())
        .map(|(&r, rep)| (r, (rep.received.len(), fingerprint(&rep.received))))
        .collect()
}

fn show(label: &str, reports: &Reports) {
    for (rank, (n, fp)) in consumer_fingerprints(reports) {
        println!("{label} analysis rank {rank:>2}: {n:>5} updates  fingerprint {fp:#018x}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let backend = args
        .iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("both")
        .to_string();

    match backend.as_str() {
        "sim" => show("sim:   ", &run_sim()),
        "native" => show("native:", &run_native()),
        "both" => {
            let sim = run_sim();
            let native = run_native();
            show("sim:   ", &sim);
            show("native:", &native);
            let same = consumer_fingerprints(&sim) == consumer_fingerprints(&native);
            println!(
                "\nper-consumer payload multisets {}",
                if same { "MATCH across backends" } else { "DIFFER across backends" }
            );
            assert!(same, "backends disagree on consumed payloads");
        }
        other => {
            eprintln!("unknown backend {other:?}: use --backend sim|native|both");
            std::process::exit(2);
        }
    }
}

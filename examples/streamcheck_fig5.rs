//! streamcheck demo — lint a deliberately broken Fig. 5 topology.
//!
//! Takes the MapReduce word-histogram pipeline (mappers ⇒ keyed stream ⇒
//! reducers ⇒ master), extracts its channel topology, then breaks it four
//! ways a refactoring plausibly would: a reducer that stops terminating
//! its master flow, a keyed routing hole, a credit window smaller than one
//! aggregated batch, and a credit-bounded feedback channel that closes a
//! dataflow cycle. The static pass catches each before a single simulated
//! (or real) rank runs.
//!
//! Run with: `cargo run --release --example streamcheck_fig5`

use apps::mapreduce::{topology, MapReduceConfig};
use streamcheck::{check, ChannelDecl, Routing};

fn main() {
    let nprocs = 32;
    let cfg = MapReduceConfig { alpha_every: 8, ..MapReduceConfig::default() };

    // The shipped topology: clean, certified deadlock-free.
    let good = topology(nprocs, &cfg);
    println!("--- Fig. 5 topology, as shipped ---");
    print!("{}", check(&good).to_text());

    // The same topology after a careless refactor.
    let mut broken = topology(nprocs, &cfg);
    // 1. One local reducer no longer calls terminate() on its master flow.
    let to_master = broken.channels.remove(1).drop_term(7);
    broken.channels.push(to_master);
    // 2. The word partitioning loses a bucket: words hashing there vanish.
    if let Routing::Keyed { buckets } = &mut broken.channels[0].routing {
        buckets[1] = None;
    }
    // 3. Aggregation is raised past the credit window: producers stall.
    broken.channels[0].config.aggregation = 64;
    broken.channels[0].config.credits = Some(32);
    // 4. Flow control is switched on everywhere and a "feedback" channel
    //    from the master back to the mappers closes the loop: every edge
    //    of the cycle is now credit-bounded, so the windows can fill all
    //    the way around and deadlock.
    broken.channels[1].config.credits = Some(64);
    let feedback_cfg =
        mpistream::ChannelConfig { credits: Some(16), ..mpistream::ChannelConfig::default() };
    let mappers = broken.channels[0].producers.clone();
    broken = broken.channel(ChannelDecl::new("feedback", vec![31], mappers, feedback_cfg));

    let report = check(&broken);
    println!();
    println!("--- after the refactor ---");
    print!("{}", report.to_text());
    println!();
    println!("machine-readable: {}", report.to_json());
    assert!(!report.is_clean());
}

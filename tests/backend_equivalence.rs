//! Cross-backend equivalence: the portable programs of `apps::portable`
//! must deliver the same per-consumer payload multisets whether the
//! transport is the discrete-event simulator (`mpisim::Rank`) or the
//! native threaded backend (`native::NativeRank`).
//!
//! Arrival *order* is explicitly not compared — the native backend makes
//! no determinism promise — so every comparison is over order-normalized
//! (sorted) payloads and their fingerprints.
//!
//! Keep reductions in this suite integer-valued (or order-insensitive):
//! both backends now reduce along binomial trees, but the two trees'
//! combine orders are an implementation detail with no cross-backend
//! agreement, so an f64 sum can legally be bitwise-different across
//! backends even on fault-free plans (DESIGN.md §11).

use std::collections::BTreeMap;
use std::sync::Arc;

use apps::portable::{
    fingerprint, mini_mapreduce, mini_mapreduce_oracle, quickstart, quickstart_with, MiniMrConfig,
    PortableReport,
};
use mpisim::{MachineConfig, World};
use mpistream::{ChannelConfig, Group, GroupSpec, Role, StreamChannel, Transport};
use native::NativeWorld;
use parking_lot::Mutex;

const RANKS: usize = 16;
const STEPS: usize = 25;
const EVERY: usize = 8;

type Reports = BTreeMap<usize, PortableReport>;

fn quickstart_sim() -> Reports {
    let reports: Arc<Mutex<Reports>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = reports.clone();
    World::new(MachineConfig::default()).with_seed(42).run_expect(RANKS, move |rank| {
        let rep = quickstart(rank, STEPS, EVERY);
        sink.lock().insert(rank.world_rank(), rep);
    });
    Arc::try_unwrap(reports).expect("world joined").into_inner()
}

fn quickstart_native() -> Reports {
    let reports: Arc<Mutex<Reports>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = reports.clone();
    NativeWorld::new(RANKS).with_compute_scale(0.01).run(move |rank| {
        let me = rank.world_rank();
        let rep = quickstart(rank, STEPS, EVERY);
        sink.lock().insert(me, rep);
    });
    Arc::try_unwrap(reports).expect("threads joined").into_inner()
}

#[test]
fn quickstart_per_consumer_payloads_match_across_backends() {
    let sim = quickstart_sim();
    let native = quickstart_native();
    assert_eq!(sim.len(), RANKS);
    assert_eq!(native.len(), RANKS);
    for rank in 0..RANKS {
        let (s, n) = (&sim[&rank], &native[&rank]);
        assert_eq!(s.sent, n.sent, "rank {rank}: streamed element count differs");
        // `received` is sorted by the portable program: multiset equality.
        assert_eq!(s.received, n.received, "rank {rank}: consumed payload multiset differs");
        if !s.received.is_empty() {
            assert_eq!(fingerprint(&s.received), fingerprint(&n.received));
        }
    }
    // The workload actually flowed: every producer streamed every step.
    let produced: u64 = sim.values().map(|r| r.sent).sum();
    assert_eq!(produced, (RANKS - RANKS / EVERY) as u64 * STEPS as u64);
}

#[test]
fn mini_mapreduce_histogram_matches_oracle_on_both_backends() {
    // A small Fig. 5 topology: 8 ranks, reducers at {3, 7}, master 7.
    const N: usize = 8;
    let cfg = MiniMrConfig::default();
    let oracle = mini_mapreduce_oracle(N, &cfg);
    assert!(oracle.iter().sum::<u64>() > 0, "oracle must count something");

    let sim_hist: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = sim_hist.clone();
    let cfg2 = cfg.clone();
    World::new(MachineConfig::default()).with_seed(7).run_expect(N, move |rank| {
        if let Some(hist) = mini_mapreduce(rank, &cfg2) {
            *sink.lock() = hist;
        }
    });
    assert_eq!(*sim_hist.lock(), oracle, "simulator master histogram != oracle");

    let native_hist: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = native_hist.clone();
    NativeWorld::new(N).with_compute_scale(0.01).run(move |rank| {
        if let Some(hist) = mini_mapreduce(rank, &cfg) {
            *sink.lock() = hist;
        }
    });
    assert_eq!(*native_hist.lock(), oracle, "native master histogram != oracle");
}

#[test]
fn tree_aggregated_mini_mapreduce_matches_oracle_on_both_backends() {
    // The aggregated pipeline: producer-side combiners (merge 4 chunks
    // before they enter the channel) plus a fan-in-2 reduction tree
    // between the local reducers and the master. Count merging is pure
    // integer addition, so the combined/tree-reduced histogram must equal
    // the serial oracle *exactly* on both backends — the float
    // reduction-order caveat of DESIGN.md §11 does not apply here.
    let cfg = MiniMrConfig { combine_every: 4, tree_fan_in: Some(2), ..MiniMrConfig::default() };
    let oracle = mini_mapreduce_oracle(RANKS, &cfg);
    assert!(oracle.iter().sum::<u64>() > 0, "oracle must count something");

    let sim_hist: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = sim_hist.clone();
    let cfg2 = cfg.clone();
    World::new(MachineConfig::default()).with_seed(13).run_expect(RANKS, move |rank| {
        if let Some(hist) = mini_mapreduce(rank, &cfg2) {
            *sink.lock() = hist;
        }
    });
    assert_eq!(*sim_hist.lock(), oracle, "simulator tree-aggregated histogram != oracle");

    let native_hist: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = native_hist.clone();
    NativeWorld::new(RANKS).with_compute_scale(0.01).run(move |rank| {
        if let Some(hist) = mini_mapreduce(rank, &cfg) {
            *sink.lock() = hist;
        }
    });
    assert_eq!(*native_hist.lock(), oracle, "native tree-aggregated histogram != oracle");
    // Same content, fingerprint-checked as a multiset for good measure.
    assert_eq!(fingerprint(&sim_hist.lock()), fingerprint(&oracle));
}

/// The flow-control regime the batched-credit equivalence tests run
/// under: a real window plus a mid-window acknowledgement batch, so the
/// consumer's credit return path actually exercises the accumulate/flush
/// logic on both backends.
fn batched_config() -> ChannelConfig {
    ChannelConfig {
        element_bytes: 1 << 10,
        aggregation: 2,
        credits: Some(8),
        credit_batch: 4,
        ..ChannelConfig::default()
    }
}

#[test]
fn quickstart_with_batched_credits_matches_across_backends() {
    let run_sim = || {
        let reports: Arc<Mutex<Reports>> = Arc::new(Mutex::new(BTreeMap::new()));
        let sink = reports.clone();
        World::new(MachineConfig::default()).with_seed(43).run_expect(RANKS, move |rank| {
            let rep = quickstart_with(rank, STEPS, EVERY, batched_config());
            sink.lock().insert(rank.world_rank(), rep);
        });
        Arc::try_unwrap(reports).expect("world joined").into_inner()
    };
    let run_native = || {
        let reports: Arc<Mutex<Reports>> = Arc::new(Mutex::new(BTreeMap::new()));
        let sink = reports.clone();
        NativeWorld::new(RANKS).with_compute_scale(0.01).run(move |rank| {
            let me = rank.world_rank();
            let rep = quickstart_with(rank, STEPS, EVERY, batched_config());
            sink.lock().insert(me, rep);
        });
        Arc::try_unwrap(reports).expect("threads joined").into_inner()
    };
    let (sim, native) = (run_sim(), run_native());
    for rank in 0..RANKS {
        let (s, n) = (&sim[&rank], &native[&rank]);
        assert_eq!(s.sent, n.sent, "rank {rank}: streamed element count differs");
        assert_eq!(s.received, n.received, "rank {rank}: consumed payload multiset differs");
        if !s.received.is_empty() {
            assert_eq!(fingerprint(&s.received), fingerprint(&n.received));
        }
    }
    // The credited run consumed exactly what the uncredited run would:
    // flow control changes pacing, never content.
    let produced: u64 = sim.values().map(|r| r.sent).sum();
    assert_eq!(produced, (RANKS - RANKS / EVERY) as u64 * STEPS as u64);
}

#[test]
fn mini_mapreduce_with_batched_credits_matches_oracle_on_both_backends() {
    const N: usize = 8;
    let cfg = MiniMrConfig { credits: Some(8), credit_batch: 4, ..MiniMrConfig::default() };
    let oracle = mini_mapreduce_oracle(N, &cfg);

    let sim_hist: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = sim_hist.clone();
    let cfg2 = cfg.clone();
    World::new(MachineConfig::default()).with_seed(11).run_expect(N, move |rank| {
        if let Some(hist) = mini_mapreduce(rank, &cfg2) {
            *sink.lock() = hist;
        }
    });
    assert_eq!(*sim_hist.lock(), oracle, "simulator master histogram != oracle");

    let native_hist: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = native_hist.clone();
    NativeWorld::new(N).with_compute_scale(0.01).run(move |rank| {
        if let Some(hist) = mini_mapreduce(rank, &cfg) {
            *sink.lock() = hist;
        }
    });
    assert_eq!(*native_hist.lock(), oracle, "native master histogram != oracle");
}

/// One round of every collective in the Transport subset, observed as a
/// flat integer vector — a pure function of `(world size, round)`, so the
/// vector a rank sees must agree across backends exactly.
fn collective_observations<TP: Transport>(rank: &mut TP, rounds: u64) -> Vec<u64> {
    let world = rank.world_group();
    let me = rank.world_rank() as u64;
    let n = rank.world_size() as u64;
    // Reversed-key split: members ordered by descending world rank, so
    // group rank != world-rank order and any backend confusing the two
    // shows up in the allgather below.
    let sub = rank
        .split(&world, Some((rank.world_rank() % 2) as i64), -(me as i64))
        .expect("every rank has a color");
    let mut obs = Vec::new();
    for r in 0..rounds {
        rank.barrier(&world);
        obs.push(rank.allreduce(&world, 8, me + r, |a, b| *a += b));
        obs.extend(rank.allgatherv(&world, 8, me * 1000 + r));
        let root = (r % n) as usize;
        obs.push(rank.bcast(&world, root, 8, (rank.world_rank() == root).then_some(r * 7)));
        obs.push(rank.allreduce(&sub, 8, me, |a, b| *a = (*a).max(*b)));
        obs.extend(rank.allgatherv(&sub, 8, me));
        obs.push(sub.rank_of(rank.world_rank()).expect("member") as u64);
    }
    obs
}

#[test]
fn tree_collectives_agree_across_backends() {
    const ROUNDS: u64 = 5;
    type ObsMap = BTreeMap<usize, Vec<u64>>;
    let sim_obs: Arc<Mutex<ObsMap>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = sim_obs.clone();
    World::new(MachineConfig::default()).with_seed(3).run_expect(RANKS, move |rank| {
        let obs = collective_observations(rank, ROUNDS);
        sink.lock().insert(rank.world_rank(), obs);
    });
    let native_obs: Arc<Mutex<ObsMap>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = native_obs.clone();
    NativeWorld::new(RANKS).run(move |rank| {
        let me = rank.world_rank();
        let obs = collective_observations(rank, ROUNDS);
        sink.lock().insert(me, obs);
    });
    let (sim, native) = (sim_obs.lock(), native_obs.lock());
    assert_eq!(sim.len(), RANKS);
    for rank in 0..RANKS {
        assert_eq!(sim[&rank], native[&rank], "rank {rank}: collective observations diverge");
    }
}

#[test]
fn native_channel_feeds_streamcheck_topology_extraction() {
    // `StreamChannel` is backend-free, so the `streamcheck` static pass
    // ingests a channel created over the native transport unchanged.
    let decl: Arc<Mutex<Option<streamcheck::ChannelDecl>>> = Arc::new(Mutex::new(None));
    let sink = decl.clone();
    NativeWorld::new(6).run(|rank| {
        let comm = rank.world_group();
        let spec = GroupSpec { every: 3 };
        let role = spec.role_of(rank.world_rank());
        let ch = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
        if rank.world_rank() == 0 {
            *sink.lock() = Some(streamcheck::ChannelDecl::from_channel("native-ch", &ch));
        }
        // Tear the channel down cleanly so no rank is left waiting.
        match role {
            Role::Producer => {
                let mut s: mpistream::Stream<u64> = mpistream::Stream::attach(ch);
                s.terminate(rank);
            }
            Role::Consumer => {
                let mut s: mpistream::Stream<u64> = mpistream::Stream::attach(ch);
                s.operate(rank, |_, _| {});
            }
            Role::Bystander => {}
        }
    });
    let decl = decl.lock().take().expect("rank 0 extracted the declaration");
    assert_eq!(decl.producers, vec![0, 1, 3, 4]);
    assert_eq!(decl.consumers, vec![2, 5]);
}

// ---------------------------------------------------------------------
// Socket backend: the same portable programs across real OS processes.
//
// Each test below forks its world via `SocketWorld::for_test`, which
// re-executes this test binary once per rank with an `--exact` filter
// for the calling test — so the socket run sits FIRST in each fn (the
// re-executed children reach it and exit before any sim/native work),
// and each fn holds exactly one `SocketWorld::run`.
// ---------------------------------------------------------------------

#[test]
fn socket_quickstart_matches_sim_and_native() {
    // 16 ranks = 16 real OS processes speaking Wire frames over Unix
    // sockets (the acceptance bar is >= 4).
    let socket: Vec<(u64, Vec<u64>)> =
        socket::SocketWorld::for_test("socket_quickstart_matches_sim_and_native", RANKS)
            .with_compute_scale(0.01)
            .run(|rank| {
                let rep = quickstart(rank, STEPS, EVERY);
                (rep.sent, rep.received)
            });
    let sim = quickstart_sim();
    let native = quickstart_native();
    assert_eq!(socket.len(), RANKS);
    for rank in 0..RANKS {
        let (sent, received) = &socket[rank];
        assert_eq!(*sent, sim[&rank].sent, "rank {rank}: socket sent count != sim");
        assert_eq!(received, &sim[&rank].received, "rank {rank}: socket multiset != sim");
        assert_eq!(received, &native[&rank].received, "rank {rank}: socket multiset != native");
        if !received.is_empty() {
            assert_eq!(fingerprint(received), fingerprint(&sim[&rank].received));
        }
    }
    let produced: u64 = socket.iter().map(|(s, _)| s).sum();
    assert_eq!(produced, (RANKS - RANKS / EVERY) as u64 * STEPS as u64);
}

#[test]
fn socket_mini_mapreduce_matches_oracle_and_sim() {
    const N: usize = 8;
    let socket_hists: Vec<Vec<u64>> =
        socket::SocketWorld::for_test("socket_mini_mapreduce_matches_oracle_and_sim", N)
            .with_compute_scale(0.01)
            .run(|rank| mini_mapreduce(rank, &MiniMrConfig::default()).unwrap_or_default());
    let cfg = MiniMrConfig::default();
    let oracle = mini_mapreduce_oracle(N, &cfg);
    assert!(oracle.iter().sum::<u64>() > 0, "oracle must count something");
    // Exactly one rank (the master) reports a histogram; counts are
    // integer merges, so the cross-process result is exact.
    let masters: Vec<&Vec<u64>> = socket_hists.iter().filter(|h| !h.is_empty()).collect();
    assert_eq!(masters.len(), 1, "exactly one master histogram");
    assert_eq!(*masters[0], oracle, "socket master histogram != oracle");

    let sim_hist: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = sim_hist.clone();
    World::new(MachineConfig::default()).with_seed(7).run_expect(N, move |rank| {
        if let Some(hist) = mini_mapreduce(rank, &cfg) {
            *sink.lock() = hist;
        }
    });
    assert_eq!(*masters[0], *sim_hist.lock(), "socket master histogram != sim");
    assert_eq!(fingerprint(masters[0]), fingerprint(&oracle));
}

#[test]
fn socket_channel_feeds_streamcheck_topology_extraction() {
    // Mirror of `native_channel_feeds_streamcheck_topology_extraction`:
    // the declaration extracted from a socket-backed channel feeds the
    // same SC001–SC006 static pass.
    let decls: Vec<(Vec<usize>, Vec<usize>)> =
        socket::SocketWorld::for_test("socket_channel_feeds_streamcheck_topology_extraction", 6)
            .run(|rank| {
                let comm = rank.world_group();
                let spec = GroupSpec { every: 3 };
                let role = spec.role_of(rank.world_rank());
                let ch = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
                let decl = streamcheck::ChannelDecl::from_channel("socket-ch", &ch);
                // Tear the channel down cleanly so no rank is left waiting.
                match role {
                    Role::Producer => {
                        let mut s: mpistream::Stream<u64> = mpistream::Stream::attach(ch);
                        s.terminate(rank);
                    }
                    Role::Consumer => {
                        let mut s: mpistream::Stream<u64> = mpistream::Stream::attach(ch);
                        s.operate(rank, |_, _| {});
                    }
                    Role::Bystander => {}
                }
                (decl.producers, decl.consumers)
            });
    // Every process extracted the same topology, and it matches the
    // native/sim one for `every: 3` over 6 ranks.
    for (rank, (producers, consumers)) in decls.iter().enumerate() {
        assert_eq!(*producers, vec![0, 1, 3, 4], "rank {rank}: producer set");
        assert_eq!(*consumers, vec![2, 5], "rank {rank}: consumer set");
    }
}

//! End-to-end integration: the full stack (engine → machine → streams →
//! applications) produces correct results and clean resource accounting.

use apps::cg::{run_blocking, run_decoupled as cg_decoupled, serial_solve, CgConfig};
use apps::mapreduce::{
    run_decoupled as mr_decoupled, run_reference as mr_reference, MapReduceConfig,
};
use apps::pic::{
    run_comm_decoupled, run_comm_reference, run_io_decoupled, run_io_reference, IoMode, PicConfig,
};
use mpisim::{MachineConfig, NoiseModel};
use workloads::{Corpus, CorpusConfig};

fn quiet_machine() -> MachineConfig {
    MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() }
}

#[test]
fn mapreduce_pipeline_is_exact_under_noise() {
    // Noise perturbs timing but must never perturb results.
    let cfg = MapReduceConfig {
        corpus: CorpusConfig {
            n_files: 24,
            vocab: 300,
            tokens_per_gb: 3_000,
            min_file_bytes: 16 << 20,
            max_file_bytes: 64 << 20,
            ..CorpusConfig::default()
        },
        alpha_every: 4,
        ..MapReduceConfig::default()
    };
    let oracle = Corpus::new(cfg.corpus.clone()).serial_histogram();
    assert_eq!(mr_reference(12, &cfg).histogram, oracle);
    assert_eq!(mr_decoupled(12, &cfg).histogram, oracle);
}

#[test]
fn cg_full_stack_converges_with_noise_and_imbalance() {
    let cfg = CgConfig { n_local: 6, iterations: 40, alpha_every: 4, ..CgConfig::default() };
    let (serial_res, serial_err) = serial_solve(12, cfg.iterations);
    let par = run_blocking(8, &cfg); // 2x2x2 of 6^3 = 12^3 global
                                     // Near the convergence plateau the residual norm is dominated by
                                     // floating-point reduction order, so compare convergence level and the
                                     // (stable) solution error rather than exact residuals.
    assert!(par.residual < serial_res * 10.0 + 1e-9, "{} vs {serial_res}", par.residual);
    assert!(
        (par.solution_error - serial_err).abs() < 1e-6,
        "{} vs {serial_err}",
        par.solution_error
    );
    let dec = cg_decoupled(8, &cfg);
    assert!(dec.residual < 1e-8);
}

#[test]
fn pic_comm_under_noise_conserves_particles() {
    let cfg = PicConfig {
        actual_per_rank: 48,
        iterations: 3,
        alpha_every: 4,
        dt: 0.3,
        ..PicConfig::default()
    };
    // Reference on 8 ranks and decoupled on 8 ranks (6 compute) each
    // conserve their own initial populations.
    let r = run_comm_reference(8, &cfg);
    let d = run_comm_decoupled(8, &cfg);
    assert!(r.final_particles > 0);
    assert!(d.final_particles > 0);
}

#[test]
fn pic_io_bytes_are_conserved_across_all_variants() {
    let cfg = PicConfig {
        machine: quiet_machine(),
        actual_per_rank: 48,
        iterations: 3,
        alpha_every: 4,
        dt: 0.2,
        io_buffer_bytes: 32 << 20,
        ..PicConfig::default()
    };
    let coll = run_io_reference(8, &cfg, IoMode::Collective);
    let shared = run_io_reference(8, &cfg, IoMode::Shared);
    assert_eq!(coll.bytes_written, shared.bytes_written);
    let dec = run_io_decoupled(8, &cfg);
    assert!(dec.bytes_written > 0);
}

#[test]
fn identical_seeds_reproduce_full_application_runs() {
    let cfg =
        PicConfig { actual_per_rank: 32, iterations: 3, alpha_every: 4, ..PicConfig::default() };
    let a = run_comm_decoupled(8, &cfg);
    let b = run_comm_decoupled(8, &cfg);
    assert_eq!(a.outcome.elapsed_secs(), b.outcome.elapsed_secs());
    assert_eq!(a.outcome.msgs_sent, b.outcome.msgs_sent);
    assert_eq!(a.final_particles, b.final_particles);
}

#[test]
fn message_accounting_is_consistent_per_rank() {
    let cfg = MapReduceConfig {
        machine: quiet_machine(),
        corpus: CorpusConfig {
            n_files: 8,
            vocab: 100,
            tokens_per_gb: 1_000,
            min_file_bytes: 8 << 20,
            max_file_bytes: 16 << 20,
            ..CorpusConfig::default()
        },
        alpha_every: 4,
        ..MapReduceConfig::default()
    };
    let res = mr_decoupled(8, &cfg);
    let total: u64 = res.outcome.per_rank_msgs.iter().sum();
    assert_eq!(total, res.outcome.msgs_sent);
    assert!(res.outcome.bytes_sent > 0);
}

#[test]
fn traces_cover_the_full_makespan_reasonably() {
    use apps::pic::run_comm_decoupled_traced;
    let cfg = PicConfig {
        machine: quiet_machine(),
        actual_per_rank: 64,
        iterations: 3,
        alpha_every: 4,
        ..PicConfig::default()
    };
    let res = run_comm_decoupled_traced(8, &cfg);
    let trace = &res.outcome.sim.trace;
    assert!(!trace.is_empty());
    // The trace horizon is within the run's makespan.
    assert!(trace.horizon() <= res.outcome.sim.end_time);
    // Compute spans exist on compute ranks (0..5 are producers for
    // every=4? ranks 3 and 7 are consumers) — check one known producer.
    assert!(trace.for_pid(0).iter().any(|s| s.tag == "comp"));
    // Gantt and CSV render without panicking.
    let gantt = trace.to_gantt(60);
    assert!(gantt.contains('C'));
    let csv = trace.to_csv();
    assert!(csv.lines().count() > 1);
}

//! Cross-validation of the analytic performance model (perfmodel,
//! Eqs. 1–4) against the simulator: the model's qualitative predictions
//! must hold in simulated runs of a matching synthetic application.

use mpisim::{MachineConfig, NoiseModel, World};
use mpistream::{run_decoupled, ChannelConfig, GroupSpec};
use perfmodel::{Beta, Complexity, Scenario};

/// Synthetic two-operation app matching the model's structure. The total
/// workload (`total_elements` of Op0, each feeding one Op1 element) is
/// fixed; the producer group splits Op0 evenly (so the model's `1/(1−α)`
/// inflation appears), and the consumer group executes Op1 at
/// `op1_cost / op1_optimization` per element (the paper's
/// application-specific optimization of the decoupled operation).
fn simulate_decoupled(
    p: usize,
    every: usize,
    total_elements: usize,
    op0_cost: f64,
    op1_cost: f64,
    op1_optimization: f64,
    agg: usize,
) -> f64 {
    let machine = MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() };
    let world = World::new(machine).with_seed(7);
    let out = world.run_expect(p, move |rank| {
        let comm = rank.comm_world();
        let n_cons = GroupSpec { every }.consumers_in(p);
        let n_prod = p - n_cons;
        let mine = total_elements.div_ceil(n_prod);
        run_decoupled::<u64, _, _, _>(
            rank,
            &comm,
            GroupSpec { every },
            ChannelConfig { element_bytes: 4 << 10, aggregation: agg, ..ChannelConfig::default() },
            move |rank, pc| {
                for i in 0..mine {
                    rank.compute_exact(op0_cost);
                    pc.stream.isend(rank, i as u64);
                }
            },
            move |rank, cc| {
                let cost = op1_cost / op1_optimization;
                cc.stream.operate(rank, move |rank, _| rank.compute_exact(cost));
            },
        );
    });
    out.elapsed_secs()
}

/// Conventional version: every rank runs its share of Op0, synchronizes,
/// then runs its share of Op1 (unoptimized), and synchronizes again.
fn simulate_conventional(p: usize, total_elements: usize, op0_cost: f64, op1_cost: f64) -> f64 {
    let machine = MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() };
    let world = World::new(machine).with_seed(7);
    let mine = total_elements.div_ceil(p);
    let out = world.run_expect(p, move |rank| {
        let comm = rank.comm_world();
        for _ in 0..mine {
            rank.compute_exact(op0_cost);
        }
        rank.barrier(&comm);
        for _ in 0..mine {
            rank.compute_exact(op1_cost);
        }
        rank.barrier(&comm);
    });
    out.elapsed_secs()
}

/// The model scenario matching the synthetic app above.
fn scenario(p: usize, total_elements: usize, op0: f64, op1: f64, opt: f64) -> Scenario {
    Scenario {
        t_w0: total_elements as f64 / p as f64 * op0,
        t_w1: total_elements as f64 / p as f64 * op1,
        complexity: Complexity::Divisible,
        t_sigma: 0.0,
        data_d: (total_elements * (4 << 10)) as u64,
        overhead_o: 1e-6,
        p,
        beta: Beta::new(0.05, 1e6),
        op1_optimization: opt,
    }
}

#[test]
fn decoupling_beats_conventional_when_the_model_says_so() {
    // MapReduce-flavoured: Op1 is substantial but runs 15x faster on the
    // dedicated group (batch processing).
    let (p, total, op0, op1, opt) = (32, 3_200, 20e-6, 30e-6, 15.0);
    let scn = scenario(p, total, op0, op1, opt);
    assert!(
        scn.decoupled(1.0 / 8.0, 4096.0) < scn.conventional(),
        "scenario chosen so the model predicts a win"
    );
    let t_conv = simulate_conventional(p, total, op0, op1);
    let t_dec = simulate_decoupled(p, 8, total, op0, op1, opt, 1);
    assert!(t_dec < t_conv, "simulation must agree with the model: dec {t_dec} vs conv {t_conv}");
}

#[test]
fn model_and_simulation_prefer_the_same_group_fraction() {
    // With a light (optimized) Op1, both should prefer a small decoupled
    // group over dedicating half the machine.
    let (p, total, op0, op1, opt) = (32, 6_400, 20e-6, 10e-6, 10.0);
    let scn = scenario(p, total, op0, op1, opt);
    let model_small = scn.predict(0.125, 4096.0);
    let model_half = scn.predict(0.5, 4096.0);
    let sim_small = simulate_decoupled(p, 8, total, op0, op1, opt, 1);
    let sim_half = simulate_decoupled(p, 2, total, op0, op1, opt, 1);
    assert_eq!(
        model_small < model_half,
        sim_small < sim_half,
        "model ({model_small:.4} vs {model_half:.4}) and simulation \
         ({sim_small:.4} vs {sim_half:.4}) disagree on alpha"
    );
    assert!(sim_small < sim_half);
}

#[test]
fn granularity_tradeoff_appears_in_simulation() {
    // Eq. 4: very fine granularity pays per-element overhead; moderate
    // aggregation amortises it.
    let fine = simulate_decoupled(16, 8, 2_000, 2e-6, 2e-6, 10.0, 1);
    let moderate = simulate_decoupled(16, 8, 2_000, 2e-6, 2e-6, 10.0, 32);
    assert!(
        moderate < fine,
        "moderate batching ({moderate}) should beat per-element messages ({fine})"
    );
}

#[test]
fn imbalance_absorption_matches_the_model_qualitatively() {
    // One straggler doubles its Op0 time. Conventionally everyone waits
    // for it at the stage barrier and then pays Op1 serially after; the
    // decoupled consumer overlaps Op1 with the straggler's tail.
    let machine = MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() };
    let elements = 100usize;
    let (fast, slow_f, op1) = (50e-6, 2.0, 40e-6);

    let world = World::new(machine.clone()).with_seed(3);
    let t_conv = world
        .run_expect(16, move |rank| {
            let comm = rank.comm_world();
            let cost = if rank.world_rank() == 0 { fast * slow_f } else { fast };
            for _ in 0..elements {
                rank.compute_exact(cost);
            }
            rank.barrier(&comm);
            for _ in 0..elements {
                rank.compute_exact(op1);
            }
            rank.barrier(&comm);
        })
        .elapsed_secs();

    let world = World::new(machine).with_seed(3);
    let t_dec = world
        .run_expect(16, move |rank| {
            let comm = rank.comm_world();
            run_decoupled::<u64, _, _, _>(
                rank,
                &comm,
                GroupSpec { every: 4 }, // 12 producers, 4 consumers
                ChannelConfig { element_bytes: 4 << 10, ..ChannelConfig::default() },
                move |rank, pc| {
                    let cost = if rank.world_rank() == 0 { fast * slow_f } else { fast };
                    for i in 0..elements {
                        rank.compute_exact(cost);
                        pc.stream.isend(rank, i as u64);
                    }
                },
                move |rank, cc| {
                    cc.stream.operate(rank, move |rank, _| rank.compute_exact(op1));
                },
            );
        })
        .elapsed_secs();

    // Conventional: 10ms straggler + 4ms Op1 ≈ 14ms. Decoupled: the
    // consumers chew through Op1 (3 producers x 100 x 40us = 12ms each)
    // while producers compute; the straggler's tail overlaps too.
    assert!(t_dec < t_conv, "imbalance absorption failed: dec {t_dec} vs conv {t_conv}");
}

//! Cross-backend pin of `recv_deadline` semantics (ISSUE 9 satellite).
//!
//! Two drift risks appear once frames cross a real wire:
//!
//! 1. **Half-read frames.** On the socket backend a deadline can expire
//!    while a frame is only partially written by the peer. The receive
//!    must report `Timeout` (i.e. `None`) and leave the link intact —
//!    the frame simply completes later and is delivered by the next
//!    receive. Framing is the reader thread's job, so consumer timeouts
//!    can never desynchronize the byte stream.
//! 2. **Spurious wakes.** Both native and socket backends park on the
//!    same mailbox eventcount, which wakes on *every* mailbox change.
//!    The deadline is absolute: a stream of non-matching arrivals must
//!    not extend the wait (a per-wake relative recomputation would spin
//!    forever under steady unrelated traffic).

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mpistream::transport::SimTime;
use mpistream::{Src, Tag, Transport, Wire};
use native::mailbox::{Env, Mailbox};
use socket::frame;

/// A deadline expiring while a frame is half-read returns Timeout
/// without corrupting the link: the completed frame (and everything
/// after it) is still delivered in order.
#[test]
fn socket_half_read_frame_times_out_cleanly() {
    let (mut tx, rx) = UnixStream::pair().expect("socketpair");
    let mailbox = Arc::new(Mailbox::new());
    let reader_box = Arc::clone(&mailbox);
    let reader = std::thread::spawn(move || socket::reader_loop(rx, 3, &reader_box, false));

    let tag = Tag::user(42);
    // One full frame's bytes, delivered in two halves around a timeout.
    let mut whole = Vec::new();
    frame::write_frame(&mut whole, tag.0, 64, &99u64.to_frame()).unwrap();
    let cut = whole.len() - 5; // split mid-payload
    tx.write_all(&whole[..cut]).unwrap();

    // The frame is in flight but incomplete: a bounded take must time
    // out (None), not deliver garbage and not kill the reader.
    let got = mailbox.take_deadline(Src::Rank(3), tag, Instant::now() + Duration::from_millis(100));
    assert!(got.is_none(), "half-read frame must not be deliverable");

    // Finish the frame, plus a second one right behind it: both arrive,
    // in order, on the same link.
    tx.write_all(&whole[cut..]).unwrap();
    frame::write_frame(&mut tx, tag.0, 64, &100u64.to_frame()).unwrap();
    let first = mailbox.take_deadline(Src::Rank(3), tag, Instant::now() + Duration::from_secs(30));
    let env = first.expect("completed frame is delivered");
    assert_eq!(unframe(env), (3, 99));
    let second = mailbox.take_deadline(Src::Rank(3), tag, Instant::now() + Duration::from_secs(30));
    assert_eq!(unframe(second.expect("second frame follows")), (3, 100));

    drop(tx); // clean EOF at a frame boundary
    reader.join().expect("reader exits cleanly on EOF");
}

fn unframe(env: Env) -> (usize, u64) {
    let buf = env.payload.downcast::<Vec<u8>>().expect("socket frames carry bytes");
    (env.src, u64::from_frame(&buf).expect("valid u64 frame"))
}

/// The deadline is absolute across spurious wakes: steady non-matching
/// traffic (each push wakes every parked receiver) must not postpone the
/// timeout. This is the shared `Mailbox` contract both the native and
/// socket backends park on — one test pins both.
#[test]
fn deadline_is_absolute_under_spurious_wakes() {
    let mailbox = Arc::new(Mailbox::new());
    let noise_box = Arc::clone(&mailbox);
    let noise = std::thread::spawn(move || {
        // 2s of unrelated arrivals at 20ms intervals — each one a wake.
        for i in 0..100u64 {
            noise_box.push(Env { src: 0, tag: Tag::user(7), bytes: 8, payload: Box::new(i) });
            std::thread::sleep(Duration::from_millis(20));
        }
    });

    let start = Instant::now();
    let got = mailbox.take_deadline(Src::Any, Tag::user(999), start + Duration::from_millis(200));
    let elapsed = start.elapsed();
    assert!(got.is_none(), "no matching message ever arrives");
    assert!(elapsed >= Duration::from_millis(200), "woke before the deadline: {elapsed:?}");
    // A per-wake relative recomputation would ride the noise for ~2s.
    assert!(elapsed < Duration::from_secs(1), "deadline extended by spurious wakes: {elapsed:?}");
    noise.join().unwrap();
}

/// End-to-end over real processes: `recv_deadline` on a `SocketRank`
/// times out on silence, and the *same* `(src, tag)` receive later
/// succeeds once the peer actually sends — the timed-out receive leaves
/// no residue. Matches the native backend's behavior for the same
/// program shape.
#[test]
fn socket_recv_deadline_times_out_then_delivers() {
    let reports = socket::SocketWorld::for_test("socket_recv_deadline_times_out_then_delivers", 2)
        .run(|rank| {
            let tag = Tag::user(5);
            let world = rank.world_group();
            if rank.world_rank() == 0 {
                // Nothing sent yet: a 100ms deadline receive must miss.
                let deadline = SimTime(rank.now().0 + 100_000_000);
                let early = rank.recv_deadline::<u64>(Src::Rank(1), tag, deadline);
                assert!(early.is_none(), "timed out receive must return None");
                rank.barrier(&world); // now release the sender
                let (v, info) = rank.recv::<u64>(Src::Rank(1), tag);
                assert_eq!(info.src, 1);
                v
            } else {
                rank.barrier(&world); // rank 0 has already timed out
                rank.send(0, tag, 8, 77u64);
                0
            }
        });
    assert_eq!(reports, vec![77, 0]);
}

//! Scaling-shape integration tests: small sweeps asserting the *relative*
//! behaviours the paper reports (who wins, and that gaps widen with P) at
//! CI-friendly scales. The full paper-scale sweeps live in the
//! `bench-harness` figure binaries.

use apps::cg::{run_blocking, run_nonblocking, CgConfig};
use apps::mapreduce::{run_decoupled as mr_dec, run_reference as mr_ref, MapReduceConfig};
use apps::pic::{
    run_comm_decoupled, run_comm_reference, run_io_decoupled, run_io_reference, IoMode, PicConfig,
};
use workloads::CorpusConfig;

/// Fig. 5 shape: the reference's reduce phase grows with P, so the
/// decoupled advantage widens.
#[test]
fn mapreduce_gap_widens_with_scale() {
    let cfg_at = |p: usize| MapReduceConfig {
        wire_scale: 20_000.0,
        corpus: CorpusConfig {
            n_files: 4 * p, // weak scaling: corpus grows with P
            vocab: 400,
            tokens_per_gb: 1_500,
            min_file_bytes: 8 << 20,
            max_file_bytes: 32 << 20,
            ..CorpusConfig::default()
        },
        chunk_tokens: 64,
        alpha_every: 8,
        ..MapReduceConfig::default()
    };
    let ratio_at = |p: usize| {
        let cfg = cfg_at(p);
        let r = mr_ref(p, &cfg).outcome.elapsed_secs();
        let d = mr_dec(p, &cfg).outcome.elapsed_secs();
        r / d
    };
    let small = ratio_at(16);
    let large = ratio_at(64);
    assert!(large > small, "speedup should widen with P: {small:.2}x at 16 vs {large:.2}x at 64");
    assert!(large > 1.0, "decoupling must win at P=64, got {large:.2}x");
}

/// Fig. 6 shape: non-blocking beats blocking, and its advantage holds as
/// P grows (overlap hides the halo latency).
#[test]
fn cg_nonblocking_beats_blocking_at_scale() {
    let cfg = CgConfig { n_local: 6, iterations: 15, ..CgConfig::default() };
    let tb = run_blocking(64, &cfg).outcome.elapsed_secs();
    let tn = run_nonblocking(64, &cfg).outcome.elapsed_secs();
    assert!(tn < tb, "non-blocking {tn} must beat blocking {tb} at P=64");
}

/// Fig. 7 shape: reference particle-communication time grows with P (the
/// per-round collectives harvest the global per-step imbalance), the
/// decoupled one stays flat-ish and wins at scale.
#[test]
fn pic_comm_reference_degrades_faster_than_decoupled() {
    let cfg = PicConfig {
        actual_per_rank: 48,
        iterations: 4,
        alpha_every: 16,
        dt: 0.3,
        ..PicConfig::default()
    };
    let ratio_at = |p: usize| {
        let r = run_comm_reference(p, &cfg).op_secs;
        let d = run_comm_decoupled(p, &cfg).op_secs;
        r / d
    };
    let small = ratio_at(16);
    let large = ratio_at(128);
    assert!(
        large > small * 0.9,
        "reference should degrade at least as fast: {small:.2} vs {large:.2}"
    );
    assert!(large > 1.0, "decoupled must win at P=128 ({large:.2}x)");
}

/// Fig. 8 shape: at P=64, shared ≫ collective > decoupled.
#[test]
fn pic_io_ordering_matches_figure8() {
    let cfg = PicConfig {
        actual_per_rank: 48,
        iterations: 2,
        alpha_every: 8,
        mover_flops_per_particle: 40.0,
        dt: 0.2,
        ..PicConfig::default()
    };
    // P = 128: past the decoupled-vs-collective crossover (~P=100 in our
    // machine model; the paper sees it at 64).
    let coll = run_io_reference(128, &cfg, IoMode::Collective).outcome.elapsed_secs();
    let shared = run_io_reference(128, &cfg, IoMode::Shared).outcome.elapsed_secs();
    let dec = run_io_decoupled(128, &cfg).outcome.elapsed_secs();
    assert!(shared > 2.0 * coll, "shared writes should be far slower: {shared} vs {coll}");
    assert!(dec < coll, "decoupled {dec} should beat collective {coll}");
}

/// The α sweep of Fig. 5: some interior α wins over both a very large and
/// a very small decoupled group.
#[test]
fn mapreduce_alpha_sweep_has_useful_interior() {
    let base = MapReduceConfig {
        wire_scale: 20_000.0,
        corpus: CorpusConfig {
            n_files: 128,
            vocab: 400,
            tokens_per_gb: 1_500,
            min_file_bytes: 8 << 20,
            max_file_bytes: 32 << 20,
            ..CorpusConfig::default()
        },
        chunk_tokens: 64,
        ..MapReduceConfig::default()
    };
    let time_at = |every: usize| {
        let cfg = MapReduceConfig { alpha_every: every, ..base.clone() };
        mr_dec(64, &cfg).outcome.elapsed_secs()
    };
    let t2 = time_at(2); // half the machine decoupled: starves the map
    let t8 = time_at(8);
    assert!(t8 < t2, "alpha=1/8 ({t8}) should beat alpha=1/2 ({t2})");
}

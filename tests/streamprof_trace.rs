//! streamprof end-to-end: a golden Chrome trace on the simulator
//! (byte-compared — the sim is deterministic, so the exporter must be
//! too), structural validation of the native backend's trace (wall-clock
//! timings differ run to run, but the shape must not), and exporter
//! equivalence between `desim`'s original trace renderers and the
//! `streamprof` adapters fig2 now routes through.
//!
//! To refresh the golden after an intentional format change:
//! `STREAMPROF_UPDATE_GOLDEN=1 cargo test -p integration --test streamprof_trace`
//! (then re-run without the variable to confirm).

use apps::pic::{run_comm_decoupled_traced, PicConfig};
use apps::portable::{quickstart, quickstart_with};
use mpisim::{MachineConfig, NoiseModel, World};
use mpistream::{ChannelConfig, GroupSpec, Role};
use native::NativeWorld;
use streamprof::{validate_chrome, Clock, ProfSink, Profiled, Trace};

const RANKS: usize = 8;
const STEPS: usize = 12;
const EVERY: usize = 4;

const GOLDEN: &str = include_str!("golden/quickstart_sim.trace.json");

fn sim_chrome_trace() -> String {
    let sink = ProfSink::new(Clock::Virtual);
    let s2 = sink.clone();
    let machine = MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() };
    let world = World::new(machine).with_seed(7);
    world.run_expect(RANKS, move |rank| {
        let mut rank = Profiled::new(rank, s2.clone());
        let _ = quickstart(&mut rank, STEPS, EVERY);
    });
    sink.take().to_chrome_json()
}

#[test]
fn sim_quickstart_chrome_trace_matches_golden() {
    let json = sim_chrome_trace();
    if std::env::var_os("STREAMPROF_UPDATE_GOLDEN").is_some() {
        let path =
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/quickstart_sim.trace.json");
        std::fs::write(path, &json).expect("write golden");
        return;
    }
    // The golden must itself be a valid Chrome trace before we demand
    // byte-equality with it.
    validate_chrome(GOLDEN).expect("golden is structurally valid");
    assert_eq!(
        json, GOLDEN,
        "sim Chrome trace drifted from tests/golden/quickstart_sim.trace.json; \
         if the change is intentional, refresh with STREAMPROF_UPDATE_GOLDEN=1"
    );
}

#[test]
fn native_quickstart_chrome_trace_is_structurally_valid() {
    let sink = ProfSink::new(Clock::Wall);
    let s2 = sink.clone();
    let world = NativeWorld::new(RANKS).with_compute_scale(0.05);
    world.run(move |rank| {
        let mut rank = Profiled::new(rank, s2.clone());
        let _ = quickstart(&mut rank, STEPS, EVERY);
    });
    let trace = sink.take();
    let json = trace.to_chrome_json();
    let stats = validate_chrome(&json).expect("native trace is structurally valid");
    assert_eq!(stats.metadata, RANKS, "one thread_name record per rank");
    assert_eq!(stats.spans, trace.spans().len());
    assert_eq!(stats.streams, trace.streams().len());
    // Same program, same instrumentation: both backends must report the
    // same stream totals even though the clocks differ.
    let golden_streams = validate_chrome(GOLDEN).unwrap().streams;
    assert_eq!(stats.streams, golden_streams);
}

/// The native backend under profiling, with a credit window and *batched*
/// acknowledgements: wall-clock timings and interleavings differ run to
/// run, but every counter the profiler keeps is an exact function of the
/// program, so this pins them all — including that credit occupancy is
/// sampled once per credited send, no more, no less, regardless of how
/// the consumer batches its acks.
#[test]
fn native_stream_metrics_are_exact_under_batched_credits() {
    const WINDOW: u64 = 8;
    const AGG: u64 = 2;
    let sink = ProfSink::new(Clock::Wall);
    let s2 = sink.clone();
    NativeWorld::new(RANKS).with_compute_scale(0.01).run(move |rank| {
        let mut rank = Profiled::new(rank, s2.clone());
        let _ = quickstart_with(
            &mut rank,
            STEPS,
            EVERY,
            ChannelConfig {
                element_bytes: 1 << 10,
                aggregation: AGG as usize,
                credits: Some(WINDOW as usize),
                credit_batch: 4,
                ..ChannelConfig::default()
            },
        );
    });
    let trace = sink.take();
    let streams = trace.streams();
    assert_eq!(streams.len(), RANKS, "every rank touched the one channel");
    let channel = streams.keys().next().expect("non-empty").1;
    assert!(streams.keys().all(|&(_, ch)| ch == channel), "a single channel in play");

    let spec = GroupSpec { every: EVERY };
    let n_consumers = spec.consumers_in(RANKS) as u64;
    let producers = RANKS as u64 - n_consumers;
    // STEPS divides by the aggregation factor, so no partial flush at
    // terminate and the batch math below is exact.
    assert_eq!(STEPS as u64 % AGG, 0);
    let batches = STEPS as u64 / AGG;
    for rank in 0..RANKS {
        let m = &streams[&(rank, channel)];
        match spec.role_of(rank) {
            Role::Producer => {
                assert_eq!(m.elems_sent, STEPS as u64, "rank {rank}: elems sent");
                assert_eq!(m.batches_sent, batches, "rank {rank}: batches sent");
                assert_eq!(m.bytes_sent, STEPS as u64 * (1 << 10), "rank {rank}: bytes sent");
                assert_eq!((m.elems_recv, m.batches_recv, m.bytes_recv), (0, 0, 0));
                // One occupancy sample per credited send; each records
                // between `AGG` (the batch just sent) and the full window.
                assert_eq!(m.credit_samples, batches, "rank {rank}: one sample per send");
                assert_eq!(m.credit_window, WINDOW);
                assert!(m.credit_outstanding_sum >= AGG * batches, "rank {rank}: samples too low");
                assert!(
                    m.credit_outstanding_sum <= WINDOW * batches,
                    "rank {rank}: occupancy above the window"
                );
            }
            Role::Consumer => {
                // Static routing spreads the producers evenly over the
                // consumers (producers divide evenly here).
                let feeders = producers / n_consumers;
                assert_eq!(m.elems_recv, feeders * STEPS as u64, "rank {rank}: elems recv");
                assert_eq!(m.batches_recv, feeders * batches, "rank {rank}: batches recv");
                assert_eq!(m.bytes_recv, feeders * STEPS as u64 * (1 << 10));
                assert_eq!((m.elems_sent, m.batches_sent, m.bytes_sent), (0, 0, 0));
                assert_eq!((m.credit_samples, m.credit_outstanding_sum), (0, 0));
            }
            Role::Bystander => unreachable!("quickstart has no bystanders"),
        }
    }
}

#[test]
fn desim_and_streamprof_exporters_agree_on_fig2_spans() {
    let cfg = PicConfig {
        actual_per_rank: 64,
        iterations: 2,
        alpha_every: 7,
        dt: 0.3,
        ..PicConfig::default()
    };
    let run = run_comm_decoupled_traced(7, &cfg);
    let adapted = Trace::from_desim(&run.outcome.sim.trace, Clock::Virtual);
    // fig2 renders through the adapter; its CSV and Gantt output must be
    // byte-identical to what desim's own renderers produced before.
    assert_eq!(adapted.to_csv(), run.outcome.sim.trace.to_csv());
    assert_eq!(adapted.to_gantt(100), run.outcome.sim.trace.to_gantt(100));
}

//! Certification sweep: the extracted topology of every shipped
//! configuration — the Fig. 2–8 bench setups, the scaling-shape test
//! configs and the example/quickstart shapes — passes the streamcheck
//! static analysis with zero errors, and every acyclic pipeline is
//! certified deadlock-free.

use apps::analysis::AnalysisConfig;
use apps::pic::PicConfig;
use bench_harness::configs;
use streamcheck::{check, Report, Severity};

fn assert_clean(name: &str, report: &Report) {
    assert!(report.is_clean(), "{name} has errors:\n{}", report.to_text());
}

fn assert_certified(name: &str, report: &Report) {
    assert_clean(name, report);
    assert!(
        report.certified_deadlock_free,
        "{name} should be certified deadlock-free:\n{}",
        report.to_text()
    );
}

/// A request/reply pair is cyclic by design; it must be clean, carry the
/// informational SC002 cycle note, and *not* be certified.
fn assert_benign_cycle(name: &str, report: &Report) {
    assert_clean(name, report);
    assert!(!report.certified_deadlock_free, "{name} has a cycle, certification is wrong");
    assert!(
        report.findings.iter().any(|f| f.code == "SC002" && f.severity == Severity::Info),
        "{name} should carry the informational cycle finding:\n{}",
        report.to_text()
    );
}

#[test]
fn fig5_mapreduce_topologies_certify() {
    for p in [16usize, 64, 256] {
        for every in [8usize, 16, 32] {
            if p < every * 2 {
                continue; // needs at least two reducers for the master split
            }
            let topo = apps::mapreduce::topology(p, &configs::fig5(p, every));
            assert_certified(&format!("fig5 P={p} 1/{every}"), &check(&topo));
        }
    }
}

/// The tree-aggregated fig5 pipeline (producer combiners + reduction
/// tree between the local reducers and the master): the per-block tree
/// channels keep the block graph a forest directed at the master, so the
/// deep topology must still certify deadlock-free.
#[test]
fn fig5_tree_aggregated_topologies_certify() {
    for (p, every, fan_in) in
        [(64usize, 16usize, 2usize), (64, 16, 4), (256, 16, 8), (256, 32, 4), (128, 8, 3)]
    {
        let cfg = apps::mapreduce::MapReduceConfig {
            combine_every: 8,
            tree_fan_in: Some(fan_in),
            ..configs::fig5(p, every)
        };
        let topo = apps::mapreduce::topology(p, &cfg);
        assert!(
            topo.channels.iter().any(|c| c.name.starts_with("tree-s")),
            "fig5 P={p} 1/{every} k={fan_in} should declare tree-stage channels"
        );
        assert_certified(&format!("fig5-tree P={p} 1/{every} k={fan_in}"), &check(&topo));
    }
}

#[test]
fn fig6_cg_topology_is_clean_benign_cycle() {
    for p in [16usize, 64] {
        let topo = apps::cg::topology(p, &configs::fig6(15));
        assert_benign_cycle(&format!("fig6 P={p}"), &check(&topo));
    }
}

#[test]
fn fig2_and_fig7_pic_comm_topologies_are_clean_benign_cycles() {
    let fig2 =
        PicConfig { actual_per_rank: 48, iterations: 4, alpha_every: 7, ..PicConfig::default() };
    for p in [14usize, 28] {
        let topo = apps::pic::comm_topology(p, &fig2);
        assert_benign_cycle(&format!("fig2 P={p}"), &check(&topo));
    }
    for p in [16usize, 128] {
        let topo = apps::pic::comm_topology(p, &configs::fig7());
        assert_benign_cycle(&format!("fig7 P={p}"), &check(&topo));
    }
}

#[test]
fn fig8_pic_io_topology_certifies() {
    for p in [16usize, 128] {
        let topo = apps::pic::io_topology(p, &configs::fig8());
        assert_certified(&format!("fig8 P={p}"), &check(&topo));
    }
}

/// The fig8 writer-aggregation variant: per-block spill channels between
/// forwarder and writer I/O ranks stay acyclic and certify, across block
/// shapes with and without a singleton tail.
#[test]
fn fig8_writer_aggregated_topologies_certify() {
    for (p, fan_in) in [(32usize, 2usize), (64, 4), (64, 3), (128, 4)] {
        let cfg = apps::pic::PicConfig { io_writer_fan_in: Some(fan_in), ..configs::fig8() };
        let topo = apps::pic::io_topology(p, &cfg);
        assert!(
            topo.channels.iter().any(|c| c.name.starts_with("spill-b")),
            "fig8 P={p} k={fan_in} should declare spill channels"
        );
        assert_certified(&format!("fig8-agg P={p} k={fan_in}"), &check(&topo));
    }
}

#[test]
fn quickstart_and_alpha_sweep_analysis_topologies_certify() {
    // The quickstart example: 32 ranks, one analysis rank per 16.
    let topo = apps::analysis::topology(32, &AnalysisConfig::default());
    assert_certified("quickstart", &check(&topo));
    // The alpha_tuning sweep's group shapes.
    for every in [2usize, 4, 8, 16, 32] {
        let cfg = AnalysisConfig { alpha_every: every, ..AnalysisConfig::default() };
        let topo = apps::analysis::topology(64, &cfg);
        assert_certified(&format!("alpha 1/{every}"), &check(&topo));
    }
}

/// A decoupled pipeline whose consumer group is a Viewstamped
/// Replication group (`crates/replica`): the replicated declaration must
/// certify under the SC007 replica-group sanity lint, and each seeded
/// misconfiguration of the same shape must be refused.
#[test]
fn replicated_consumer_topologies_certify() {
    use mpistream::ChannelConfig;
    use streamcheck::{ChannelDecl, GroupDecl, Routing, Topology};

    let config = |replicas| ChannelConfig {
        element_bytes: 4 << 10,
        credits: Some(64),
        failure_timeout: Some(mpisim::SimDuration::from_millis(5)),
        replicas,
        ..ChannelConfig::default()
    };
    for producers in [4usize, 16, 61] {
        let group: Vec<usize> = (producers..producers + 3).collect();
        let topo = Topology::new(producers + 3)
            .group(GroupDecl::new("compute", (0..producers).collect()))
            .group(GroupDecl::new("replicas", group.clone()))
            .channel(ChannelDecl::new("results", (0..producers).collect(), group, config(2)));
        assert_certified(&format!("replicated P={producers}"), &check(&topo));
    }

    // The same shape, broken three ways: each must fail certification.
    let base = || {
        Topology::new(7).channel(ChannelDecl::new(
            "results",
            (0..4).collect(),
            vec![4, 5, 6],
            config(2),
        ))
    };
    let mut short = base();
    short.channels[0].consumers.pop();
    assert!(!check(&short).is_clean(), "undersized replica group must not certify");
    let mut spread = base();
    spread.channels[0].routing = Routing::RoundRobin;
    assert!(!check(&spread).is_clean(), "round-robin over a replica group must not certify");
    let mut hasty = base();
    hasty.channels[0].config.replication_patience = Some(mpisim::SimDuration::from_millis(1));
    assert!(!check(&hasty).is_clean(), "hair-trigger failover patience must not certify");
}

/// The default configurations of all three applications, across a few
/// world sizes: no extracted topology may regress to an error.
#[test]
fn default_configs_have_error_free_topologies() {
    for p in [16usize, 32, 64] {
        assert_certified(
            &format!("mapreduce default P={p}"),
            &check(&apps::mapreduce::topology(p, &apps::mapreduce::MapReduceConfig::default())),
        );
        assert_benign_cycle(
            &format!("cg default P={p}"),
            &check(&apps::cg::topology(p, &apps::cg::CgConfig::default())),
        );
        assert_benign_cycle(
            &format!("pic comm default P={p}"),
            &check(&apps::pic::comm_topology(p, &PicConfig::default())),
        );
        assert_certified(
            &format!("pic io default P={p}"),
            &check(&apps::pic::io_topology(p, &PicConfig::default())),
        );
    }
}

//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The container building this repository has no network access, so the
//! real crate cannot be fetched. This shim keeps the `criterion_group!` /
//! `criterion_main!` / `benchmark_group` surface and reports simple
//! mean-of-samples wall-clock timings to stdout — enough to compare
//! relative performance locally, with none of criterion's statistics.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _c: self, name, sample_size }
    }

    /// Register a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one("", name, sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Time `f` and print the mean sample duration.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, name, self.sample_size, f);
        self
    }

    /// Finish the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, samples: usize, mut f: F) {
    let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
    // One warm-up sample, then the timed ones.
    f(&mut b);
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    for _ in 0..samples {
        f(&mut b);
    }
    let per_iter = if b.iters == 0 { Duration::ZERO } else { b.elapsed / b.iters as u32 };
    let label = if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
    println!("  {label}: {per_iter:?}/iter over {} iters", b.iters);
}

/// Per-benchmark timing helper passed to the closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one call of `routine` (criterion batches; this shim times each
    /// call individually and averages).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_function("counter", |b| b.iter(|| calls += 1));
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}

//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The container building this repository has no network access and no
//! cargo registry cache, so the real crate cannot be fetched. This shim
//! provides API-compatible `Mutex`, `MutexGuard`, `RwLock` and `Condvar`
//! backed by `std::sync`; the key difference from `std` is the
//! non-poisoning `lock()` that returns a guard directly.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`-style (non-poisoning) API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling thread. Unlike `std`, a
    /// panicked prior holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable with `parking_lot`-style `wait(&mut guard)`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically release the guard's lock and wait for a notification;
    /// the lock is re-acquired before returning. Spurious wakes possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with `parking_lot`-style (non-poisoning) API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: g }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: g }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// RAII shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut flag = m.lock();
            while !*flag {
                cv.wait(&mut flag);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        h.join().unwrap();
    }
}

//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The container building this repository has no network access, so the
//! real crate cannot be fetched. This shim keeps the call-site syntax —
//! the `proptest!` macro, range/`any`/tuple/`prop::collection::vec`
//! strategies, `Strategy::prop_map`, the (weighted) `prop_oneof!` union,
//! `ProptestConfig { cases, .. }` and the `prop_assert*` macros — while
//! replacing the machinery with straightforward seeded random sampling.
//! There is **no shrinking**: a failing case reports its generated inputs
//! and panics.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`cases` is the only knob this shim honours).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// The generator handed to strategies. Deterministic per property: seeded
/// from the property's name so runs are reproducible and independent.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed a runner RNG for the property named `name`.
    pub fn for_property(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Uniform `usize` in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        use rand::Rng;
        self.inner.gen_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        use rand::Rng;
        self.inner.gen::<f64>()
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strat: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strat: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.strat.sample(rng))
        }
    }

    /// A weighted, boxed `prop_oneof!` arm.
    pub type OneofArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

    /// The strategy built by [`prop_oneof!`](crate::prop_oneof): draws an
    /// arm with probability proportional to its weight, then samples it.
    pub struct WeightedUnion<V> {
        arms: Vec<OneofArm<V>>,
        total: u32,
    }

    impl<V> WeightedUnion<V> {
        pub fn new(arms: Vec<OneofArm<V>>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof needs a positive total weight");
            WeightedUnion { arms, total }
        }
    }

    impl<V> Strategy for WeightedUnion<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total as usize) as u32;
            for (w, f) in &self.arms {
                if pick < *w {
                    return f(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    /// One `prop_oneof!` arm, boxed for the union (macro plumbing).
    pub fn oneof_arm<S>(weight: u32, strat: S) -> OneofArm<S::Value>
    where
        S: Strategy + 'static,
    {
        (weight, Box::new(move |rng| strat.sample(rng)))
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = if span > u64::MAX as u128 {
                        rng.next_u64() as u128
                    } else {
                        (rng.next_u64() % span as u64) as u128
                    };
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = if span > u64::MAX as u128 {
                        rng.next_u64() as u128
                    } else {
                        (rng.next_u64() % span as u64) as u128
                    };
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    );
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use std::ops::Range;

        /// Strategy for `Vec<T>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut crate::TestRng) -> Self::Value {
                assert!(self.len.start < self.len.end, "empty length range");
                let n = self.len.start + rng.below(self.len.end - self.len.start);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// `prop::collection::vec(elem, len_range)`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }

    pub mod sample {
        use crate::arbitrary::Arbitrary;
        use crate::TestRng;

        /// An abstract index into a collection of runtime-known length.
        #[derive(Clone, Copy, Debug)]
        pub struct Index(u64);

        impl Index {
            /// Resolve against a collection of `len` elements.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Union strategy: pick one of the arms, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]` draws `a` three times as often).
/// All arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $($crate::strategy::oneof_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The property-test entry macro. Supports the forms used in this
/// workspace: an optional `#![proptest_config(..)]` inner attribute
/// followed by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_property(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg,)+
                    );
                    let __result = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(move || { $body })
                    );
                    if let Err(payload) = __result {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs:\n{}",
                            __case + 1, __config.cases, stringify!($name), __inputs
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -4i64..=4, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuples_and_index_compose(
            t in prop::collection::vec((0usize..6, any::<u64>()), 1..5),
            ix in any::<prop::sample::Index>(),
        ) {
            let i = ix.index(t.len());
            prop_assert!(i < t.len());
            prop_assert!(t[i].0 < 6);
        }
    }
}

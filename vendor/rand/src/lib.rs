//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The container building this repository has no network access, so the
//! real crate cannot be fetched. This shim provides `Rng`, `SeedableRng`
//! and `rngs::StdRng` with the same call-site syntax. `StdRng` here is
//! xoshiro256++ seeded through SplitMix64 — a different generator from
//! upstream's ChaCha12, but every consumer in this workspace relies only
//! on determinism and distribution quality, never on the exact stream.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a generator (the shim's
/// stand-in for `Standard: Distribution<T>`).
pub trait UniformSample: Sized {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f64::sample_from(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + f64::sample_from(rng) * (hi - lo)
    }
}

/// Uniform value in `[0, span)` without modulo bias (rejection sampling;
/// `span == 0` means the full 2^64 range fits and no rejection is needed).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its natural range (`[0,1)` for floats).
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Uniform sample within `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_unit_interval_moments() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
